// Clock-constrained operation scheduling (the "HLS middle end").
//
// Each basic block is scheduled independently with ASAP list scheduling and
// operator chaining: combinational operations pack into one FSM state while
// their accumulated delay fits the clock budget; multi-cycle operators
// (wide multiply, divide, memory) occupy pipeline stages. Values whose
// producer and consumer land in different states get pipeline registers —
// the dominant FF source, and inherently a *global* property of the graph
// (the reason FF prediction needs more than per-node features).
#pragma once

#include <vector>

#include "frontend/lower.h"
#include "hls/resource_model.h"

namespace gnnhls {

struct HlsConfig {
  double clock_ns = 10.0;
  /// Fraction of the clock reserved for uncertainty; the scheduler chains
  /// combinational logic only up to clock_ns * (1 - uncertainty).
  double clock_uncertainty = 0.125;
};

/// Schedule of one operation.
struct OpSchedule {
  int node = -1;
  int start_cycle = 0;
  int end_cycle = 0;       // cycle in which the result becomes available
  double ready_ns = 0.0;   // in-cycle completion time (chaining position)
  bool registered = false; // true if the value is written to a register
};

/// Schedule of one basic block.
struct BlockSchedule {
  int block_id = 0;
  int cycles = 1;                   // FSM states consumed by the block
  double max_chain_ns = 0.0;        // worst combinational chain in any state
  std::vector<OpSchedule> ops;      // one entry per datapath op in the block
  double register_ff = 0.0;         // pipeline-register FFs added here
};

struct ProgramSchedule {
  std::vector<BlockSchedule> blocks;
  int total_states = 0;
  double total_register_ff = 0.0;
  double max_chain_ns = 0.0;
  /// Estimated total latency in cycles, weighted by block execution counts.
  double latency_cycles = 0.0;
};

/// True when a shift node's amount operand is a compile-time constant
/// (such shifts cost nothing; see ResourceLibrary).
bool has_constant_shift_amount(const IrGraph& graph, int node);

/// Number of incoming data edges of a node (phi/mux fan-in).
int data_fanin(const IrGraph& graph, int node);

ProgramSchedule schedule_program(const LoweredProgram& prog,
                                 const ResourceLibrary& lib,
                                 const HlsConfig& cfg);

}  // namespace gnnhls
