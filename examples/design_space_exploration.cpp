// Design-space exploration with a learned QoR predictor — the use case that
// motivates early prediction (the paper's IronMan lineage): rank candidate
// implementations of a kernel *before* synthesizing any of them.
//
// We sweep a matrix-multiply kernel across unroll factors and datapath
// bitwidths, predict LUT cost for every variant from its IR graph, and
// compare the predicted ranking with the ground-truth ranking from the HLS
// simulator (Spearman rank correlation).
//
// Build & run:  ./build/examples/design_space_exploration
#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/predictor.h"
#include "support/table.h"

using namespace gnnhls;

namespace {

/// gemm variant: `unroll` independent multiply-accumulate chains per
/// iteration (loop unrolling trades area for latency), `bits`-wide datapath.
Function make_gemm_variant(int unroll, int bits) {
  constexpr long n = 8;
  Function f;
  f.name = "gemm_u" + std::to_string(unroll) + "_w" + std::to_string(bits);
  f.params = {Param{"a", ScalarType{bits, true}, n * n, false},
              Param{"b", ScalarType{bits, true}, n * n, false}};
  f.body.push_back(decl_array("c", ScalarType{bits, true}, n * n));
  std::vector<StmtPtr> body;
  for (int u = 0; u < unroll; ++u) {
    const std::string acc = "acc" + std::to_string(u);
    body.push_back(decl(
        acc, ScalarType{bits, true},
        bin(BinOpKind::kMul,
            aref("a", bin(BinOpKind::kAnd,
                          bin(BinOpKind::kAdd, var("i"), lit(u)),
                          lit(n * n - 1))),
            aref("b", bin(BinOpKind::kAnd,
                          bin(BinOpKind::kAdd, var("i"), lit(u * 7)),
                          lit(n * n - 1))))));
    body.push_back(assign_array(
        "c", bin(BinOpKind::kAnd, bin(BinOpKind::kAdd, var("i"), lit(u)),
                 lit(n * n - 1)),
        var(acc)));
  }
  f.body.push_back(for_stmt("i", 0, n * n / unroll, 1, std::move(body)));
  f.body.push_back(ret(aref("c", lit(0))));
  return f;
}

double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  const auto ranks = [](const std::vector<double>& v) {
    std::vector<int> order(v.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int x, int y) { return v[static_cast<std::size_t>(x)] <
                                         v[static_cast<std::size_t>(y)]; });
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      r[static_cast<std::size_t>(order[i])] = static_cast<double>(i);
    }
    return r;
  };
  const std::vector<double> ra = ranks(a), rb = ranks(b);
  const double n = static_cast<double>(a.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

}  // namespace

int main() {
  // ----- train a LUT predictor on generic synthetic CDFGs -----
  std::cout << "training LUT predictor on 200 synthetic CDFG programs...\n";
  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kCdfg;
  dc.num_graphs = 200;
  dc.seed = 21;
  const std::vector<Sample> corpus = build_synthetic_dataset(dc);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(corpus.size()), 5);
  ModelConfig mc;
  mc.kind = GnnKind::kRgcn;
  mc.hidden = 32;
  mc.layers = 3;
  TrainConfig tc;
  tc.epochs = 45;
  tc.lr = 1e-2F;
  QorPredictor predictor(Approach::kOffTheShelf, mc, tc);
  predictor.fit(corpus, split, Metric::kLut);
  std::cout << "  test MAPE on synthetic: "
            << TextTable::pct(predictor.evaluate_mape(corpus, split.test))
            << "\n\n";

  // ----- sweep the design space -----
  TextTable table({"variant", "predicted LUT", "actual LUT", "actual DSP",
                   "latency (cycles)"});
  std::vector<double> predicted, actual;
  for (int unroll : {1, 2, 4, 8}) {
    for (int bits : {8, 16, 32}) {
      const Function variant = make_gemm_variant(unroll, bits);
      Sample s = make_sample(variant, GraphKind::kCdfg, HlsConfig{},
                             "dse/" + variant.name);
      LoweredProgram prog = lower_to_cdfg(variant);
      const HlsOutcome outcome = run_hls_flow(prog);
      const double pred = predictor.predict(s);
      predicted.push_back(pred);
      actual.push_back(s.truth.lut);
      table.add_row({variant.name, TextTable::num(pred, 0),
                     TextTable::num(s.truth.lut, 0),
                     TextTable::num(s.truth.dsp, 0),
                     TextTable::num(outcome.latency_cycles, 0)});
    }
  }
  std::cout << "design space (predictions need no HLS run per variant):\n"
            << table.to_string();

  const double rho = spearman_rank_correlation(predicted, actual);
  std::cout << "\nSpearman rank correlation (predicted vs actual LUT): "
            << TextTable::num(rho, 3)
            << "\nA high rank correlation means the predictor can drive DSE "
               "pruning without synthesizing every candidate.\n";
  return 0;
}
