// Kernel-variant builders: one AST per (kernel, unroll, bits) design point.
#include "suites/variants.h"

#include <stdexcept>

#include "suites/dsl.h"

namespace gnnhls {

namespace {

using namespace suite_dsl;  // NOLINT(google-build-using-namespace)

void check_unroll(int unroll, long trip) {
  GNNHLS_CHECK(unroll >= 1, "variant: unroll must be >= 1");
  GNNHLS_CHECK(trip % unroll == 0, "variant: unroll must divide trip count");
}

void check_bits(int bits) {
  GNNHLS_CHECK(bits >= 2 && bits <= 256, "variant: bitwidth out of range");
}

std::string variant_name(const std::string& kernel, int unroll, int bits) {
  return kernel + "_u" + std::to_string(unroll) + "_w" + std::to_string(bits);
}

}  // namespace

Function make_gemm_variant(int unroll, int bits) {
  constexpr long n = 8;
  check_unroll(unroll, n * n);
  check_bits(bits);
  Function f;
  f.name = variant_name("gemm", unroll, bits);
  const ScalarType ty{bits, true};
  f.params = {Param{"a", ty, n * n, false}, Param{"b", ty, n * n, false}};
  f.body.push_back(decl_array("c", ty, n * n));
  std::vector<StmtPtr> body;
  for (int u = 0; u < unroll; ++u) {
    const std::string acc = "acc" + std::to_string(u);
    body.push_back(
        decl(acc, ty,
             A("a", (var("i") + lit(u)) & lit(n * n - 1)) *
                 A("b", (var("i") + lit(u * 7)) & lit(n * n - 1))));
    body.push_back(
        assign_array("c", (var("i") + lit(u)) & lit(n * n - 1), var(acc)));
  }
  f.body.push_back(for_stmt("i", 0, n * n / unroll, 1, std::move(body)));
  f.body.push_back(ret(A("c", lit(0))));
  return f;
}

Function make_fir_variant(int unroll, int bits) {
  constexpr long samples = 32, taps = 8;
  check_unroll(unroll, samples);
  check_bits(bits);
  Function f;
  f.name = variant_name("fir", unroll, bits);
  const ScalarType ty{bits, true};
  f.params = {Param{"x", ty, samples, false}, Param{"coef", ty, taps, false}};
  f.body.push_back(decl_array("y", ty, samples));
  std::vector<StmtPtr> body;
  for (int u = 0; u < unroll; ++u) {
    const std::string acc = "acc" + std::to_string(u);
    // Sample index i*unroll + u; tap index folded into the coefficient ring.
    auto idx = [&] {
      return (var("i") * lit(unroll) + lit(u)) & lit(samples - 1);
    };
    body.push_back(decl(acc, ty,
                        A("x", idx()) * A("coef", (var("i") + lit(u)) &
                                                      lit(taps - 1))));
    body.push_back(
        assign_array("y", idx(), (var(acc) >> lit(1)) + A("y", idx())));
  }
  f.body.push_back(for_stmt("i", 0, samples / unroll, 1, std::move(body)));
  f.body.push_back(ret(A("y", lit(0))));
  return f;
}

Function make_stencil_variant(int unroll, int bits) {
  constexpr long width = 32;
  check_unroll(unroll, width);
  check_bits(bits);
  Function f;
  f.name = variant_name("stencil", unroll, bits);
  const ScalarType ty{bits, true};
  f.params = {Param{"in", ty, width + 2, false}};
  f.body.push_back(decl_array("out", ty, width));
  std::vector<StmtPtr> body;
  for (int u = 0; u < unroll; ++u) {
    auto idx = [&](long off) {
      return var("i") * lit(unroll) + lit(u) + lit(off);
    };
    // (in[i] + 2*in[i+1] + in[i+2]) / 4 — multiplier-free 3-point blur.
    body.push_back(assign_array(
        "out", idx(0),
        (A("in", idx(0)) + (A("in", idx(1)) << lit(1)) + A("in", idx(2))) >>
            lit(2)));
  }
  f.body.push_back(for_stmt("i", 0, width / unroll, 1, std::move(body)));
  f.body.push_back(ret(A("out", lit(0))));
  return f;
}

const std::vector<VariantKernel>& dse_variant_kernels() {
  static const std::vector<VariantKernel> kernels = {
      {"gemm", &make_gemm_variant},
      {"fir", &make_fir_variant},
      {"stencil", &make_stencil_variant},
  };
  return kernels;
}

Function make_variant(const std::string& kernel, int unroll, int bits) {
  for (const VariantKernel& k : dse_variant_kernels()) {
    if (k.name == kernel) return k.build(unroll, bits);
  }
  throw std::invalid_argument("unknown DSE kernel: " + kernel);
}

}  // namespace gnnhls
