// Reproduces the Fig. 1 timeliness argument with google-benchmark micro
// timings of every stage in the prediction flow:
//
//   behavioral program --(front-end compilation)--> IR graph
//                      --(GNN inference)----------> predicted QoR
//   vs.
//   IR graph --(HLS schedule+bind+implement)------> actual QoR
//
// The paper's claim is that front-end extraction + GNN inference runs in
// seconds while Vitis HLS + implementation takes minutes to hours. Our HLS
// is itself a fast simulator, so absolute ratios differ; what this bench
// demonstrates is that prediction cost is flat and tiny while HLS cost
// grows with schedule length (loops x states), i.e. the stage ordering of
// Fig. 1 holds in this substrate too.
#include <benchmark/benchmark.h>

#include "core/predictor.h"
#include "suites/suites.h"

namespace gnnhls {
namespace {

const Function& gemm_function() {
  static const Function f = [] {
    for (auto& p : machsuite_all()) {
      if (p.name == "gemm_ncubed") return std::move(p.func);
    }
    throw std::logic_error("gemm_ncubed missing");
  }();
  return f;
}

void BM_FrontendCompile(benchmark::State& state) {
  const Function& f = gemm_function();
  for (auto _ : state) {
    LoweredProgram p = lower_to_cdfg(f);
    benchmark::DoNotOptimize(p.graph.num_nodes());
  }
}
BENCHMARK(BM_FrontendCompile);

void BM_FeatureExtraction(benchmark::State& state) {
  LoweredProgram p = lower_to_cdfg(gemm_function());
  run_hls_flow(p);
  const GraphTensors gt = GraphTensors::build(p.graph);
  for (auto _ : state) {
    const Matrix feats =
        InputFeatureBuilder::build(p.graph, Approach::kOffTheShelf);
    benchmark::DoNotOptimize(feats.size());
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_GnnInference(benchmark::State& state) {
  LoweredProgram p = lower_to_cdfg(gemm_function());
  run_hls_flow(p);
  const GraphTensors gt = GraphTensors::build(p.graph);
  const Matrix feats =
      InputFeatureBuilder::build(p.graph, Approach::kOffTheShelf);
  Rng rng(1);
  ModelConfig mc;
  mc.kind = static_cast<GnnKind>(state.range(0));
  mc.hidden = 64;
  mc.layers = 3;
  GraphRegressor model(
      mc, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(gt, feats));
  }
  state.SetLabel(gnn_kind_name(mc.kind));
}
BENCHMARK(BM_GnnInference)
    ->Arg(static_cast<int>(GnnKind::kGcn))
    ->Arg(static_cast<int>(GnnKind::kRgcn))
    ->Arg(static_cast<int>(GnnKind::kPna));

void BM_HierarchicalInference(benchmark::State& state) {
  // Knowledge-infused inference = classifier pass + regressor pass; the
  // paper's "zero overhead" claim means no extra *inputs*, and this shows
  // the runtime cost is merely ~2x a single GNN pass.
  LoweredProgram p = lower_to_cdfg(gemm_function());
  run_hls_flow(p);
  const GraphTensors gt = GraphTensors::build(p.graph);
  const Matrix base_feats =
      InputFeatureBuilder::build(p.graph, Approach::kOffTheShelf);
  Rng rng(2);
  ModelConfig mc;
  mc.kind = GnnKind::kRgcn;
  mc.hidden = 64;
  mc.layers = 3;
  NodeClassifier classifier(
      mc, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf), rng);
  GraphRegressor regressor(
      mc, InputFeatureBuilder::feature_dim(Approach::kKnowledgeInfused), rng);
  for (auto _ : state) {
    const auto inferred = classifier.infer_types(gt, base_feats);
    const Matrix feats = InputFeatureBuilder::build(
        p.graph, Approach::kKnowledgeInfused, &inferred);
    benchmark::DoNotOptimize(regressor.predict(gt, feats));
  }
}
BENCHMARK(BM_HierarchicalInference);

void BM_HlsFlow(benchmark::State& state) {
  const Function& f = gemm_function();
  for (auto _ : state) {
    LoweredProgram p = lower_to_cdfg(f);
    const HlsOutcome o = run_hls_flow(p);
    benchmark::DoNotOptimize(o.implemented.lut);
  }
}
BENCHMARK(BM_HlsFlow);

void BM_HlsFlowAllSuites(benchmark::State& state) {
  // End-to-end "implementation" cost over all 56 real kernels — the labels
  // a user would otherwise have to wait for.
  const auto programs = all_real_world();
  for (auto _ : state) {
    double total_lut = 0.0;
    for (const auto& sp : programs) {
      LoweredProgram p = lower_to_cdfg(sp.func);
      total_lut += run_hls_flow(p).implemented.lut;
    }
    benchmark::DoNotOptimize(total_lut);
  }
}
BENCHMARK(BM_HlsFlowAllSuites)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gnnhls

BENCHMARK_MAIN();
