// Asynchronous micro-batching inference front-end (the ROADMAP's "serving
// batcher").
//
// DSE loops score thousands of candidate designs per search step, usually
// from several concurrent searcher threads, each holding one graph at a
// time. Running a full forward per graph wastes the batched engine: the
// GraphBatch segment readout already produces [N_graphs, 1] predictions in
// member order for the cost of roughly one tape. The ServingBatcher turns
// that into a serving primitive: callers submit single samples and get a
// future; a worker thread collects requests for a bounded window (max_batch
// requests or batch_window_us microseconds, whichever closes first), runs
// ONE QorPredictor::predict_many forward over the disjoint union, and
// scatters the per-member predictions back to each caller's promise.
//
// Determinism contract: a served prediction is bit-identical to
// QorPredictor::predict on the same sample and trained model, regardless of
// which requests happened to share its micro-batch (the union adds no
// cross-graph edges and segment ops reduce each member's rows in solo
// order). Batching changes latency, never values — asserted by
// tests/serve_test.cpp.
//
// Threading: submit()/predict_many()/stats()/shutdown() are safe from any
// number of threads. The model is shared read-only — the batcher takes the
// predictor by const reference and requires that nobody re-fits it while
// serving. Destruction (or shutdown()) drains: every accepted request is
// answered before the worker exits.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "serve/serve_stats.h"

namespace gnnhls {

/// The latency-vs-throughput knobs. Both bound every micro-batch: a window
/// closes as soon as max_batch requests are queued, and no later than
/// batch_window_us microseconds after its oldest request arrived.
struct ServeConfig {
  /// Graphs per forward pass (>= 1). 1 disables batching: every request
  /// pays its own forward (the baseline bench_serving compares against).
  int max_batch = 8;
  /// Longest time a queued request may wait for co-batchable traffic, in
  /// microseconds (>= 0). 0 means "never wait": the worker serves whatever
  /// is queued the moment it looks — lowest latency, batches form only when
  /// requests arrive faster than forwards complete.
  std::int64_t batch_window_us = 200;
  /// Back each micro-batch forward's tape temporaries with the worker
  /// thread's scratch arena, reset between micro-batches (support/arena.h).
  /// Execution-only: served values are unchanged.
  bool arena = false;
};

class ServingBatcher {
 public:
  /// Spawns the worker thread. `predictor` must be fitted already, must
  /// outlive the batcher, and must not be re-fit while serving (the worker
  /// reads it concurrently with callers).
  explicit ServingBatcher(const QorPredictor& predictor, ServeConfig cfg = {});

  /// Drains and joins (equivalent to shutdown()).
  ~ServingBatcher();

  ServingBatcher(const ServingBatcher&) = delete;
  ServingBatcher& operator=(const ServingBatcher&) = delete;

  /// Enqueues one sample and returns the future for its decoded QoR
  /// prediction. `sample` is borrowed: it must stay alive until the future
  /// is ready. After shutdown() the returned future holds a
  /// std::runtime_error instead of blocking forever.
  std::future<double> submit(const Sample& sample);

  /// Blocking convenience: submits every sample, waits for all futures and
  /// returns the predictions in input order. Safe from many threads at
  /// once; the requests micro-batch with any other concurrent traffic.
  std::vector<double> predict_many(const std::vector<const Sample*>& samples);

  /// Stops accepting new requests, serves everything already queued, then
  /// joins the worker. Idempotent and safe to call concurrently with
  /// submitters (they observe either acceptance or the shutdown error).
  void shutdown();

  /// Consistent snapshot of the serving counters (see serve_stats.h).
  ServeStats stats() const;

  const ServeConfig& config() const { return cfg_; }

 private:
  struct Request {
    const Sample* sample;
    std::promise<double> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Why the worker closed a micro-batch window (maps onto the flush_*
  /// counters in ServeStats).
  enum class FlushReason { kFull, kTimeout, kDrain };

  void worker_loop();
  /// Runs one micro-batch outside the lock, records it in stats_ (one
  /// locked update, preserving the snapshot invariants documented in
  /// serve_stats.h) and fulfills its promises.
  void run_batch(std::vector<Request>& batch, FlushReason reason);

  const QorPredictor& predictor_;
  const ServeConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // worker wakeup: new request / shutdown
  std::deque<Request> queue_;
  ServeStats stats_;
  bool stop_ = false;

  std::mutex join_mu_;  // serializes concurrent shutdown() calls
  std::thread worker_;
};

}  // namespace gnnhls
