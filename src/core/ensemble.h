// Deep-ensemble QoR prediction with dispersion-based uncertainty.
//
// A QorEnsemble is K QorPredictors that differ ONLY by seed (Lakshminarayanan
// et al.'s deep-ensemble recipe, the standard uncertainty baseline for
// regressors): member k fits with the base seed offset by k, so member 0 is
// bitwise the single predictor a plain fit would have produced, and every
// added member buys disagreement signal. Scoring aggregates the members into
// ScoreResult{mean, uncertainty} — the uncertainty is the population standard
// deviation of the member predictions, the quantity acquisition strategies
// (dse/explorer.h) turn into an exploration bonus: a candidate the members
// disagree on is a candidate the training corpus says little about.
//
// Batched scoring on the pure-feature path assembles the GraphBatch union
// and stacked feature matrix ONCE and runs every member's forward over that
// shared assembly — K forwards, one union build. The hierarchical
// self-inferred path (-I) cannot share features (each member owns a
// classifier), so it falls back to per-member predict_many.
//
// Determinism: member order is fixed, aggregation accumulates in member
// order with double precision, and each member inherits the predictor's
// bit-identity contract — ensemble scores are bit-identical across thread
// counts and serving paths, and an ensemble of one is bitwise the wrapped
// single model.
#pragma once

#include <memory>
#include <vector>

#include "core/predictor.h"

namespace gnnhls {

/// One scored prediction: the (ensemble) mean and a dispersion uncertainty —
/// the population standard deviation over member predictions, exactly 0.0
/// for single-model scorers.
struct ScoreResult {
  double mean = 0.0;
  double uncertainty = 0.0;
};

class QorEnsemble {
 public:
  /// `members` >= 1 predictors sharing (approach, model_cfg, train_cfg);
  /// only their seeds differ (base seed + member index).
  QorEnsemble(Approach approach, ModelConfig model_cfg, TrainConfig train_cfg,
              int members,
              InfusedInference infused = InfusedInference::kSelfInferred);

  /// Fits every member on the same corpus/split/metric; member k trains
  /// with effective seed (opts.seed, else TrainConfig::seed) + k. Returns
  /// member 0's report (bitwise the single-model fit's report).
  FitReport fit(const std::vector<Sample>& samples, const SplitIndices& split,
                Metric metric, const FitOptions& opts = {});

  /// Feeds the same ground-truth delta to every member's refit; each member
  /// continues from its own checkpoint with its own seed stream. Returns
  /// member 0's report.
  FitReport refit(const std::vector<Sample>& new_samples,
                  const FitOptions& opts = QorPredictor::refit_defaults());

  /// Batched mean + uncertainty in input order. Pure-feature approaches
  /// share one union/feature assembly across all K member forwards.
  std::vector<ScoreResult> score_many(
      const std::vector<const Sample*>& samples) const;

  ScoreResult score(const Sample& sample) const;

  /// Means only — the drop-in replacement for QorPredictor::predict_many.
  std::vector<double> predict_many(
      const std::vector<const Sample*>& samples) const;

  double predict(const Sample& sample) const { return score(sample).mean; }

  int size() const { return static_cast<int>(members_.size()); }
  const QorPredictor& member(int k) const {
    return *members_[static_cast<std::size_t>(k)];
  }
  QorPredictor& member(int k) { return *members_[static_cast<std::size_t>(k)]; }
  Approach approach() const { return approach_; }
  Metric metric() const { return members_.front()->metric(); }

 private:
  Approach approach_;
  InfusedInference infused_;
  std::uint64_t base_seed_;  // TrainConfig::seed; member k fits at base + k
  std::vector<std::unique_ptr<QorPredictor>> members_;
};

}  // namespace gnnhls
