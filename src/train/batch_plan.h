// Per-fit training data loader: a rotation of fixed mini-batches.
//
// The pre-refactor fit loops reshuffled the sample order every epoch and
// re-chunked it into GraphBatch unions, so union assembly and feature
// stacking were paid O(epochs) times. A BatchPlan fixes batch *membership*
// once per fit (from the first shuffle — exactly the chunks the first epoch
// would have seen) and pre-builds every union with its stacked feature and
// label matrices; epochs then reshuffle only the *order* in which the fixed
// batches are visited. Randomized visit order preserves SGD's decorrelation
// benefit while amortizing assembly entirely — the multi-epoch batch reuse
// the ROADMAP calls out.
//
// Cross-fit sharing: membership is a pure function of (ordered sample uids,
// batch_size, order seed), and a batch's expensive half — the GraphBatch
// union plus the stacked feature matrix — is additionally a pure function of
// the feature variant. That immutable half lives in a BatchCore; plans built
// with a non-empty share_key route their cores through the process-wide
// BatchCoreCache, so same-split refits (e.g. the same corpus fitted per
// metric, or per-epoch validation evaluation) reuse one assembly instead of
// rebuilding identical unions. Labels stay per-plan (they encode the fitted
// metric). Cache hits change nothing numerically: the membership shuffle
// still runs (same Rng draw stream), only the assembly is skipped.
//
// In legacy mode (batch_size <= 1) the plan degrades to a per-sample view
// with the persistent order vector the old loop used, reshuffled with the
// same Rng draws, so single-graph gradient-accumulation training stays
// bit-for-bit on the pre-batching trajectory.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/dataset.h"
#include "gnn/graph_batch.h"
#include "support/rng.h"
#include "tensor/matrix.h"

namespace gnnhls {

/// The immutable, shareable half of one mini-batch: fixed membership, the
/// members' disjoint union, and their stacked input features. Always
/// heap-backed (assembly pauses any installed scratch arena) because cached
/// cores outlive every per-batch arena reset.
struct BatchCore {
  std::vector<int> members;  // sample indices, fixed for the fit
  GraphBatch batch;          // disjoint union of the members
  Matrix features;           // stacked per-node input features
};

using BatchCorePtr = std::shared_ptr<const BatchCore>;

/// Process-wide cache of BatchCore sequences keyed by BatchPlan::share_key
/// strings. Thread-safe; the builder runs under the cache lock, so
/// concurrent lookups of the same key build once.
class BatchCoreCache {
 public:
  static BatchCoreCache& global();

  using BuildFn = std::function<std::vector<BatchCorePtr>()>;
  /// Returns the core sequence for `key`, invoking `build` on first use.
  std::vector<BatchCorePtr> lookup(const std::string& key,
                                   const BuildFn& build);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<BatchCorePtr>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class BatchPlan {
 public:
  /// One mini-batch of the rotation (batched mode): a shared immutable core
  /// plus this plan's stacked labels.
  struct Item {
    BatchCorePtr core;
    Matrix labels;  // stacked labels ([k,1] targets / [n,3] bits)

    const std::vector<int>& members() const { return core->members; }
    const GraphBatch& batch() const { return core->batch; }
    const Matrix& features() const { return core->features; }
  };

  /// Returns a stable reference to sample s's input features (the
  /// FeatureCache hands these out; the plan never copies them per epoch).
  using FeatureFn = std::function<const Matrix&(const Sample&)>;
  /// Returns sample s's label rows: a [1,1] encoded regression target or a
  /// [num_nodes, k] node-label matrix.
  using LabelFn = std::function<Matrix(const Sample&)>;

  /// Builds the rotation over samples[train_idx]. order_rng drives both the
  /// membership-fixing shuffle (batched mode) and the per-epoch reshuffles;
  /// pass the same seed the old fit loop used and epoch 0 reproduces its
  /// first epoch exactly. Union assembly fans out on the global thread pool.
  /// A non-empty share_key (see the share_key helper) routes the cores
  /// through the BatchCoreCache: the key must pin every input the cores
  /// depend on — uid sequence, batch size, order seed, feature variant.
  static BatchPlan build(const std::vector<Sample>& samples,
                         const std::vector<int>& train_idx, int batch_size,
                         const FeatureFn& feature_of, const LabelFn& label_of,
                         Rng order_rng, const std::string& share_key = {});

  /// One independently-shuffled, independently-cached slice of a segmented
  /// plan (see build_segments). A refit models its corpus as segments —
  /// [original training set, feedback round 1, feedback round 2, ...] —
  /// where every previously-fitted segment keys the exact cores its own fit
  /// built, so growing the corpus re-assembles only the new segment's
  /// unions.
  struct Segment {
    std::vector<int> idx;            // sample indices into `samples`
    std::uint64_t order_seed = 0;    // membership-shuffle seed (this segment)
    std::string share_key;           // BatchCoreCache key; "" = don't share
  };

  /// Builds a rotation whose batches are the concatenation of each segment's
  /// independently chunked membership: segment s's idx is shuffled with
  /// Rng(s.order_seed), chunked to batch_size, and its cores resolved
  /// through s.share_key — a segment whose (idx, order_seed, batch_size,
  /// feature variant) match a prior build()/build_segments() call is a pure
  /// cache hit, which is what makes refit deltas cheap. Epoch 0 visits the
  /// concatenated build order; later epochs reshuffle the visit order with
  /// rotation_rng (membership never changes). Labels are rebuilt per plan.
  /// Batched mode only (batch_size >= 2); batch boundaries never span
  /// segments, so trailing partial batches per segment are kept as-is.
  static BatchPlan build_segments(const std::vector<Sample>& samples,
                                  const std::vector<Segment>& segments,
                                  int batch_size, const FeatureFn& feature_of,
                                  const LabelFn& label_of, Rng rotation_rng);

  /// Evaluation-side plan: consecutive chunks of `idx` in input order (no
  /// shuffle, no labels, no rotation), sharing the same core cache. Used by
  /// sharded evaluate_mape; requires batch_size >= 2.
  static BatchPlan build_eval(const std::vector<Sample>& samples,
                              const std::vector<int>& idx, int batch_size,
                              const FeatureFn& feature_of,
                              const std::string& share_key = {});

  /// Composes a BatchCoreCache key. `tag` must encode the feature variant
  /// (and train/eval kind), order_seed the membership shuffle seed (0 for
  /// eval plans), and idx the sample subset; the samples' uids pin corpus
  /// identity.
  static std::string share_key(const std::string& tag,
                               std::uint64_t order_seed, int batch_size,
                               const std::vector<Sample>& samples,
                               const std::vector<int>& idx);

  bool batched() const { return batch_size_ > 1; }
  int batch_size() const { return batch_size_; }
  int num_batches() const { return static_cast<int>(items_.size()); }
  const Item& item(int b) const {
    return items_[static_cast<std::size_t>(b)];
  }

  /// Batched mode: advances to the next epoch and returns its batch visit
  /// order (a permutation of [0, num_batches)). The first call returns the
  /// build order; later calls reshuffle order only — membership never
  /// changes.
  const std::vector<int>& next_epoch_batch_order();

  /// Legacy mode: reshuffles and returns the persistent sample order, one
  /// call per epoch (bit-for-bit the old loop's Rng draws).
  const std::vector<int>& next_epoch_sample_order();

  // --- legacy-mode per-sample views (valid for train_idx members only) ---
  const GraphTensors& sample_tensors(int sample_idx) const;
  const Matrix& sample_features(int sample_idx) const;
  const Matrix& sample_labels(int sample_idx) const;

 private:
  BatchPlan(Rng order_rng) : order_rng_(order_rng) {}

  const std::vector<Sample>* samples_ = nullptr;
  int batch_size_ = 1;
  Rng order_rng_;

  // batched mode
  std::vector<Item> items_;
  std::vector<int> batch_order_;
  bool first_epoch_served_ = false;

  // legacy mode
  std::vector<int> sample_order_;
  std::vector<const Matrix*> sample_features_;  // indexed by sample position
  std::vector<Matrix> sample_labels_;           // indexed by sample position
};

}  // namespace gnnhls
