#include "tensor/matrix.h"

#include <algorithm>
#include <atomic>
#include <cstddef>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#if defined(GNNHLS_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#endif

#include "support/parallel.h"

namespace gnnhls {

void tune_malloc_for_tensor_workloads() {
  // Once-flag: every fit entry point, the bench harness, and the train/
  // subsystem call this eagerly, so repeated invocations must be a cheap
  // no-op; only the first caller (process-wide, any thread) does work.
  static std::atomic<bool> tuned{false};
  if (tuned.exchange(true, std::memory_order_relaxed)) return;
#if defined(__GLIBC__)
  // Batched training churns multi-hundred-KB activation and gradient
  // buffers on every tape. Above glibc's default 128KB threshold malloc
  // serves them with mmap and returns them to the kernel on free, so each
  // SGD step pays mmap/munmap plus page re-faults — measured ~35% of
  // batched step time. Raising the thresholds keeps those blocks on heap
  // free lists. Process-wide and deliberately opt-in (called from training
  // entry points, not a static initializer): it trades RSS retention for
  // step latency, which only training-shaped workloads want.
  mallopt(M_MMAP_THRESHOLD, 64 << 20);
  mallopt(M_TRIM_THRESHOLD, 64 << 20);
#endif
}

Matrix Matrix::randn(int rows, int cols, Rng& rng, float stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.normal(0.0F, stddev);
  return m;
}

Matrix Matrix::column(const std::vector<float>& values) {
  Matrix m(static_cast<int>(values.size()), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

void Matrix::add_inplace(const Matrix& other) {
  GNNHLS_CHECK(same_shape(other), "add_inplace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::add_scaled_inplace(const Matrix& other, float alpha) {
  GNNHLS_CHECK(same_shape(other), "add_scaled_inplace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

double Matrix::squared_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

namespace {

/// Minimum per-chunk flops before a kernel is worth parallelizing: below
/// this, the wakeup costs more than the arithmetic.
constexpr long kMinFlopsPerChunk = 1L << 14;

/// Row grain so that every parallel chunk carries at least
/// kMinFlopsPerChunk worth of inner-loop work.
int row_grain(int inner, int cols) {
  const long flops_per_row = 2L * inner * std::max(cols, 1);
  return static_cast<int>(
      std::max(1L, kMinFlopsPerChunk / std::max(flops_per_row, 1L)));
}

/// Samples up to 1024 strided entries of a and reports the zero fraction.
/// The zero-skip inner loop only pays off on genuinely sparse operands
/// (one-hot feature blocks); on dense operands the data-dependent branch
/// defeats vectorization, so the dense kernel must stay branch-free.
bool probe_mostly_zero(const Matrix& a) {
  const std::size_t n = a.size();
  if (n == 0) return false;
  const std::size_t samples = std::min<std::size_t>(n, 1024);
  // Odd stride + wraparound: an even stride can alias with the (typically
  // even) column count and sample a single column, and a stride rounded
  // down would only ever probe a prefix of the data.
  const std::size_t stride = ((n + samples - 1) / samples) | 1;
  std::size_t zeros = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    if (a.data()[(s * stride) % n] == 0.0F) ++zeros;
  }
  return zeros * 2 > samples;  // > 50% zeros
}

}  // namespace

namespace {

/// Rows per register tile in the dense matmul: each b-row load feeds this
/// many output rows, cutting b-side memory traffic by the tile height.
constexpr int kMatmulRowTile = 4;
/// k-block size: bounds the b slab streamed per pass so it stays
/// cache-resident while the i-tile's partial sums live in the out rows.
constexpr int kMatmulKTile = 64;

#if defined(GNNHLS_SIMD) && defined(__AVX2__)
/// Explicit-SIMD inner update: orow[j..) += aik * brow[j..) for one k.
/// Unfused multiply+add (no FMA) so each element performs exactly the same
/// rounding steps as the scalar loop — bit-identity is the contract, which
/// is also why the build enforces -ffp-contract=off alongside this kernel.
inline void axpy_row(float aik, const float* brow, float* orow, int n) {
  const __m256 va = _mm256_set1_ps(aik);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vb = _mm256_loadu_ps(brow + j);
    const __m256 vo = _mm256_loadu_ps(orow + j);
    _mm256_storeu_ps(orow + j, _mm256_add_ps(vo, _mm256_mul_ps(va, vb)));
  }
  for (; j < n; ++j) orow[j] += aik * brow[j];
}
#else
inline void axpy_row(float aik, const float* brow, float* orow, int n) {
  for (int j = 0; j < n; ++j) orow[j] += aik * brow[j];
}
#endif

/// Dense k-j register-blocked micro-kernel for output rows [i_lo, i_hi).
/// Loop order is kblock -> row-tile -> k -> j: every output element j of
/// every row still receives its k contributions in ascending-k order
/// (identical to the naive i-k-j loop), so blocking never changes results —
/// it only lets one streamed b-row update kMatmulRowTile output rows and
/// keeps the active b slab hot across the tile.
void matmul_dense_rows(const Matrix& a, const Matrix& b, Matrix& out,
                       int i_lo, int i_hi) {
  const int K = a.cols();
  const int N = b.cols();
  for (int k0 = 0; k0 < K; k0 += kMatmulKTile) {
    const int k1 = std::min(k0 + kMatmulKTile, K);
    int i = i_lo;
    for (; i + kMatmulRowTile <= i_hi; i += kMatmulRowTile) {
      const float* a0 = a.row_ptr(i);
      const float* a1 = a.row_ptr(i + 1);
      const float* a2 = a.row_ptr(i + 2);
      const float* a3 = a.row_ptr(i + 3);
      float* o0 = out.row_ptr(i);
      float* o1 = out.row_ptr(i + 1);
      float* o2 = out.row_ptr(i + 2);
      float* o3 = out.row_ptr(i + 3);
      for (int k = k0; k < k1; ++k) {
        const float* brow = b.row_ptr(k);
        axpy_row(a0[k], brow, o0, N);
        axpy_row(a1[k], brow, o1, N);
        axpy_row(a2[k], brow, o2, N);
        axpy_row(a3[k], brow, o3, N);
      }
    }
    for (; i < i_hi; ++i) {  // tail rows of the tile
      const float* arow = a.row_ptr(i);
      float* orow = out.row_ptr(i);
      for (int k = k0; k < k1; ++k) axpy_row(arow[k], b.row_ptr(k), orow, N);
    }
  }
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  GNNHLS_CHECK_EQ(a.cols(), b.rows(), "matmul: inner dimension mismatch");
  Matrix out(a.rows(), b.cols());
  const bool sparse = probe_mostly_zero(a);
  parallel_for(0, a.rows(), row_grain(a.cols(), b.cols()),
               [&](int i_lo, int i_hi) {
    if (!sparse) {
      matmul_dense_rows(a, b, out, i_lo, i_hi);
      return;
    }
    for (int i = i_lo; i < i_hi; ++i) {
      const float* arow = a.row_ptr(i);
      float* orow = out.row_ptr(i);
      for (int k = 0; k < a.cols(); ++k) {
        const float aik = arow[k];
        if (aik == 0.0F) continue;
        const float* brow = b.row_ptr(k);
        for (int j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
      }
    }
  });
  return out;
}

Matrix matmul_transpose_a(const Matrix& a, const Matrix& b) {
  GNNHLS_CHECK_EQ(a.rows(), b.rows(), "matmul_transpose_a: dimension mismatch");
  Matrix out(a.cols(), b.cols());
  // Deliberately serial and k-outer: this is the weight-gradient kernel
  // (activations^T x upstream-grad), whose output [in_dim, out_dim] is small
  // and cache-resident while a and b can be tall batched activations.
  // k-outer streams a and b exactly once; an i-outer parallel variant
  // re-reads all of a column-wise per output row and thrashes L2 as soon as
  // the batch no longer fits. The zero skip stays: a holds post-ReLU
  // activations here, which really are sparse.
  for (int k = 0; k < a.rows(); ++k) {
    const float* arow = a.row_ptr(k);
    const float* brow = b.row_ptr(k);
    for (int i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0F) continue;
      float* orow = out.row_ptr(i);
      for (int j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

Matrix matmul_transpose_b(const Matrix& a, const Matrix& b) {
  GNNHLS_CHECK_EQ(a.cols(), b.cols(), "matmul_transpose_b: dimension mismatch");
  Matrix out(a.rows(), b.rows());
  const int K = a.cols();
  const int bm = b.rows();
  parallel_for(0, a.rows(), row_grain(a.cols(), b.rows()),
               [&](int i_lo, int i_hi) {
    for (int i = i_lo; i < i_hi; ++i) {
      const float* arow = a.row_ptr(i);
      float* orow = out.row_ptr(i);
      // Column tile of four independent dot-product chains: one streamed
      // arow feeds four accumulators, replacing a single latency-bound add
      // chain with 4-way ILP. Each chain still sums in ascending k with one
      // scalar accumulator — splitting a chain (vectorizing over k) would
      // reassociate the sum and break bit-identity, so the k loop stays
      // scalar by design.
      int j = 0;
      for (; j + 4 <= bm; j += 4) {
        const float* b0 = b.row_ptr(j);
        const float* b1 = b.row_ptr(j + 1);
        const float* b2 = b.row_ptr(j + 2);
        const float* b3 = b.row_ptr(j + 3);
        float acc0 = 0.0F, acc1 = 0.0F, acc2 = 0.0F, acc3 = 0.0F;
        for (int k = 0; k < K; ++k) {
          const float av = arow[k];
          acc0 += av * b0[k];
          acc1 += av * b1[k];
          acc2 += av * b2[k];
          acc3 += av * b3[k];
        }
        orow[j] += acc0;
        orow[j + 1] += acc1;
        orow[j + 2] += acc2;
        orow[j + 3] += acc3;
      }
      for (; j < bm; ++j) {
        const float* brow = b.row_ptr(j);
        float acc = 0.0F;
        for (int k = 0; k < K; ++k) acc += arow[k] * brow[k];
        orow[j] += acc;
      }
    }
  });
  return out;
}

Matrix matmul_reference(const Matrix& a, const Matrix& b) {
  GNNHLS_CHECK_EQ(a.cols(), b.rows(),
                  "matmul_reference: inner dimension mismatch");
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.row_ptr(i);
    float* orow = out.row_ptr(i);
    for (int k = 0; k < a.cols(); ++k) {
      const float aik = arow[k];
      const float* brow = b.row_ptr(k);
      for (int j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix matmul_transpose_b_reference(const Matrix& a, const Matrix& b) {
  GNNHLS_CHECK_EQ(a.cols(), b.cols(),
                  "matmul_transpose_b_reference: dimension mismatch");
  Matrix out(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.row_ptr(i);
    float* orow = out.row_ptr(i);
    for (int j = 0; j < b.rows(); ++j) {
      const float* brow = b.row_ptr(j);
      float acc = 0.0F;
      for (int k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] += acc;
    }
  }
  return out;
}

}  // namespace gnnhls
