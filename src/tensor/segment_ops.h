// Deterministic parallel segment kernels: the gather/scatter primitives
// behind every message-passing op (autograd.h structure ops).
//
// Parallelization rule — the "fixed-order partition reduction" contract
// (see ARCHITECTURE.md): work is partitioned by *destination* row, every
// destination row is owned by exactly one task, and each task accumulates
// its rows' contributions in ascending source-index order — the same order
// the serial loop uses. Floating-point sums therefore associate identically
// at any thread-pool width, making the parallel kernels bit-identical to
// the serial path (and to each other across thread counts).
//
// A SegmentPartition is the reusable half of that plan: a stable CSR
// grouping of source rows by destination segment. Building one costs
// O(rows + segments) — negligible next to the O(rows * cols) accumulation
// it organizes — and graph containers (GraphTensors) cache partitions for
// their edge arrays so training reuses one plan across layers and epochs.
#pragma once

#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace gnnhls {

struct SegmentPartition {
  int segments = 0;
  /// Source-row ids grouped by destination segment, ascending within each
  /// segment (stable counting sort), concatenated.
  std::vector<int> order;
  /// offsets[s]..offsets[s+1] delimits segment s's slice of `order`; also
  /// the cumulative edge-count profile balanced_boundaries chunks by.
  std::vector<int> offsets;

  int count(int s) const {
    return offsets[static_cast<std::size_t>(s) + 1] -
           offsets[static_cast<std::size_t>(s)];
  }

  /// Groups row ids [0, seg.size()) by their segment id. Every seg[i] must
  /// lie in [0, segments).
  static SegmentPartition build(const std::vector<int>& seg, int segments);
};

using SegmentPartitionPtr = std::shared_ptr<const SegmentPartition>;

/// Builds a shared partition (the form the autograd ops and GraphTensors
/// cache).
SegmentPartitionPtr make_segment_partition(const std::vector<int>& seg,
                                           int segments);

// ----- kernels -----
// All kernels run on the global thread pool and honor the fixed-order
// partition reduction rule; each falls back to the serial loop inline when
// the matrix is too small to amortize a worker wakeup. `out` must be
// pre-shaped by the caller; accumulation kernels add into it.

/// out[i, :] = src[idx[i], :] (overwrite). Row-parallel: each output row is
/// written by exactly one task.
void gather_rows_into(const Matrix& src, const std::vector<int>& idx,
                      Matrix& out);

/// out[i, :] += src[idx[i], :]. Row-parallel over i (the backward of
/// scatter_add_rows: every output row reads one source row).
void gather_add_rows_into(const Matrix& src, const std::vector<int>& idx,
                          Matrix& out);

/// out[s, :] += sum_{i : seg[i] == s} src[i, :], accumulated in ascending i
/// per segment. Destination-partitioned over `part` with edge-count-balanced
/// ranges, so power-law in-degree distributions do not serialize on one
/// task. Bit-identical to the ascending-i serial loop.
void scatter_add_rows_into(const Matrix& src, const SegmentPartition& part,
                           Matrix& out);

/// Reference serial scatter-add (the historical loop: ascending i,
/// out[seg[i]] += src[i]). Exists so tests and benches can hard-assert the
/// partitioned kernel's bit-identity against it.
void scatter_add_rows_serial(const Matrix& src, const std::vector<int>& seg,
                             Matrix& out);

/// Scatter-add dispatcher: uses `part` when non-null (validated against seg
/// size and out rows), otherwise builds a partition on the fly when the
/// input is large enough to parallelize and falls back to the serial loop
/// when it is not. Every path is bit-identical.
void scatter_add_rows_auto(const Matrix& src, const std::vector<int>& seg,
                           const SegmentPartitionPtr& part, Matrix& out);

}  // namespace gnnhls
