#include "serve/tcp_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <utility>

#include "dataset/serialize.h"
#include "obs/trace.h"
#include "serve/status_names.h"
#include "train/feature_cache.h"

namespace gnnhls {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Writes all n bytes or reports failure (peer gone). EINTR-safe;
/// MSG_NOSIGNAL so a dead peer surfaces as EPIPE, not a signal.
bool send_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  // Best-effort: Nagle only costs latency, never correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

/// Per-connection state. The reader thread is the only producer of
/// `pending` (push_back under mu), the writer thread the only consumer
/// (erase under mu) — so a reference to an element taken under the lock
/// stays valid across an unlock as long as the writer itself doesn't erase.
struct TcpEndpoint::Connection {
  int fd = -1;

  std::mutex mu;
  std::condition_variable cv;  // writer wakeup: new pending / reader done

  struct Pending {
    std::uint64_t request_id = 0;
    /// Wire-level reject decided on the reader thread: `resp` is final and
    /// `future` was never created.
    bool immediate = false;
    ResponseFrame resp;
    /// Pre-encoded frame bytes (STATS responses); when non-empty the
    /// writer sends these verbatim instead of encoding `resp`.
    std::string raw;
    std::future<double> future;     // scheduler-backed entries only
    std::uint64_t uid = 0;          // decoded sample uid (feature eviction)
    bool counts_inflight = false;   // accepted by the scheduler
  };
  std::deque<Pending> pending;
  int inflight = 0;  // scheduler-accepted, not yet answered
  bool reader_done = false;

  /// Both threads exited; the accept loop may reap (join + close).
  bool finished = false;

  std::thread reader;
  std::thread writer;
};

TcpEndpoint::TcpEndpoint(ServingScheduler& sched, TcpEndpointConfig cfg)
    : sched_(sched), cfg_(cfg) {
  if (cfg_.max_inflight < 1) {
    throw std::runtime_error("TcpEndpointConfig.max_inflight must be >= 1");
  }

  if (cfg_.obs.metrics) {
    registry_ = &MetricsRegistry::global();
  } else {
    own_registry_ = std::make_unique<MetricsRegistry>();
    registry_ = own_registry_.get();
  }
  const std::string inst =
      "ep=\"" + std::to_string(MetricsRegistry::next_instance_id()) + "\"";
  m_.connections_accepted =
      registry_->counter("gnnhls_wire_connections_accepted_total", inst);
  m_.connections_closed =
      registry_->counter("gnnhls_wire_connections_closed_total", inst);
  m_.frames_in = registry_->counter("gnnhls_wire_frames_in_total", inst);
  m_.frames_out = registry_->counter("gnnhls_wire_frames_out_total", inst);
  m_.bytes_in = registry_->counter("gnnhls_wire_bytes_in_total", inst);
  m_.bytes_out = registry_->counter("gnnhls_wire_bytes_out_total", inst);
  m_.decode_errors =
      registry_->counter("gnnhls_wire_decode_errors_total", inst);
  m_.rejects_backpressure =
      registry_->counter("gnnhls_wire_rejects_backpressure_total", inst);
  m_.rejects_payload =
      registry_->counter("gnnhls_wire_rejects_payload_total", inst);
  m_.rejects_sched =
      registry_->counter("gnnhls_wire_rejects_sched_total", inst);
  m_.responses_ok = registry_->counter("gnnhls_wire_responses_ok_total", inst);
  m_.write_failures =
      registry_->counter("gnnhls_wire_write_failures_total", inst);
  m_.stats_requests =
      registry_->counter("gnnhls_wire_stats_requests_total", inst);
  for (std::uint32_t i = 0; i < kNumStatusNames; ++i) {
    m_.responses_by_result[i] = registry_->counter(
        "gnnhls_wire_responses_total",
        inst + ",result=\"" + status_name(i) + "\"");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(cfg_.port));
  }
  if (::listen(listen_fd_, cfg_.backlog) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpEndpoint::~TcpEndpoint() { stop(); }

void TcpEndpoint::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // stop() shut the listener down (or it died) — either way, exit.
      return;
    }

    // Reap connections that finished naturally (client disconnected) so a
    // long-running server doesn't accumulate dead threads until stop().
    std::vector<std::shared_ptr<Connection>> dead;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      for (auto it = conns_.begin(); it != conns_.end();) {
        bool finished;
        {
          std::lock_guard<std::mutex> clock((*it)->mu);
          finished = (*it)->finished;
        }
        if (finished) {
          dead.push_back(std::move(*it));
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }

      set_nodelay(fd);
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conn->reader = std::thread([this, conn] { reader_loop(conn); });
      conn->writer = std::thread([this, conn] { writer_loop(conn); });
      conns_.push_back(std::move(conn));
    }
    m_.connections_accepted->add();
    for (auto& c : dead) {
      c->reader.join();
      c->writer.join();
      ::close(c->fd);
    }
  }
}

void TcpEndpoint::reader_loop(std::shared_ptr<Connection> conn) {
  WireDecoder decoder(cfg_.max_frame_bytes);
  char buf[4096];
  bool poisoned = false;
  for (;;) {
    ssize_t n;
    {
      const ObsSpan span(cfg_.obs.trace, "tcp_read", "net");
      do {
        n = ::recv(conn->fd, buf, sizeof(buf), 0);
      } while (n < 0 && errno == EINTR);
    }
    if (n <= 0) break;  // EOF, error, or stop()'s shutdown(SHUT_RD)
    m_.bytes_in->add(static_cast<std::uint64_t>(n));
    decoder.feed(buf, static_cast<std::size_t>(n));

    for (;;) {
      DecodedFrame frame;
      WireStatus st;
      {
        const ObsSpan span(cfg_.obs.trace, "frame_decode", "net");
        st = decoder.next(frame);
      }
      if (st != WireStatus::kFrame) {
        if (wire_status_is_error(st)) poisoned = true;
        break;
      }
      m_.frames_in->add();
      if (frame.type == kWireTypeRequest) {
        handle_request(*conn, std::move(frame.request));
      } else if (frame.type == kWireTypeStatsRequest) {
        handle_stats_request(*conn, frame.stats);
      }
      // A response-type frame from a client carries nothing we can act on;
      // it decodes (framing intact) and is dropped.
    }
    if (poisoned) break;
  }
  if (poisoned) m_.decode_errors->add();
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->reader_done = true;
  }
  conn->cv.notify_all();
}

void TcpEndpoint::handle_request(Connection& conn, RequestFrame&& req) {
  const ObsSpan span(cfg_.obs.trace, "admission", "net");
  Connection::Pending p;
  p.request_id = req.request_id;

  DecodedSample decoded = decode_sample_payload(req.payload);
  if (!decoded.ok()) {
    p.immediate = true;
    p.resp = ResponseFrame{req.request_id, WireResult::kBadPayload, 0.0};
    m_.rejects_payload->add();
  } else if (req.model >= static_cast<std::uint32_t>(sched_.num_models())) {
    p.immediate = true;
    p.resp = ResponseFrame{req.request_id, WireResult::kBadModel, 0.0};
    m_.rejects_payload->add();
  }

  {
    std::lock_guard<std::mutex> lock(conn.mu);
    if (!p.immediate) {
      if (conn.inflight >= cfg_.max_inflight) {
        p.immediate = true;
        p.resp = ResponseFrame{req.request_id,
                               WireResult::kOverConnectionLimit, 0.0};
        m_.rejects_backpressure->add();
      } else {
        // Decoded once; from here the sample travels by shared_ptr only.
        p.uid = decoded.sample->uid;
        SubmitOptions opts;
        opts.deadline_us = req.deadline_us;
        opts.priority = req.priority;
        ServingScheduler::Ticket ticket =
            sched_.submit(static_cast<int>(req.model),
                          std::shared_ptr<const Sample>(decoded.sample),
                          opts);
        p.future = std::move(ticket.future);
        if (ticket.accepted()) {
          p.counts_inflight = true;
          ++conn.inflight;
        }
      }
    }
    conn.pending.push_back(std::move(p));
  }
  conn.cv.notify_all();
}

void TcpEndpoint::handle_stats_request(Connection& conn,
                                       const StatsFrame& req) {
  // Rendered on the reader thread (the writer only moves bytes) and
  // enqueued like any immediate response, so a scrape never jumps the
  // queue ahead of answers already pending.
  m_.stats_requests->add();
  StatsFrame resp;
  resp.request_id = req.request_id;
  resp.text = render_stats_text();
  Connection::Pending p;
  p.request_id = req.request_id;
  p.immediate = true;
  p.raw = encode_stats_response_frame(resp);
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    conn.pending.push_back(std::move(p));
  }
  conn.cv.notify_all();
}

std::string TcpEndpoint::render_stats_text() const {
  std::string text = registry_->render_text();
  // The scheduler may publish to a different registry (e.g. endpoint
  // private, scheduler global or vice versa) — render both, once.
  if (&sched_.metrics_registry() != registry_) {
    text += sched_.metrics_registry().render_text();
  }
  return text;
}

void TcpEndpoint::write_response(Connection& conn, const ResponseFrame& resp) {
  const ObsSpan span(cfg_.obs.trace, "write_back", "net");
  const std::string bytes = encode_response_frame(resp);
  const bool ok = send_all(conn.fd, bytes.data(), bytes.size());
  if (ok) {
    m_.frames_out->add();
    m_.bytes_out->add(bytes.size());
    m_.responses_by_result[static_cast<std::uint32_t>(resp.result)]->add();
  } else {
    m_.write_failures->add();
  }
}

void TcpEndpoint::write_raw_frame(Connection& conn, const std::string& bytes) {
  const ObsSpan span(cfg_.obs.trace, "write_back", "net");
  const bool ok = send_all(conn.fd, bytes.data(), bytes.size());
  if (ok) {
    m_.frames_out->add();
    m_.bytes_out->add(bytes.size());
  } else {
    m_.write_failures->add();
  }
}

void TcpEndpoint::writer_loop(std::shared_ptr<Connection> conn) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::unique_lock<std::mutex> lock(conn->mu);
  for (;;) {
    if (conn->pending.empty()) {
      if (conn->reader_done) break;
      conn->cv.wait(lock);
      continue;
    }
    // Answer ANY pending entry whose result is ready — responses go out as
    // futures resolve, not in strict request order.
    std::size_t idx = kNone;
    for (std::size_t i = 0; i < conn->pending.size(); ++i) {
      Connection::Pending& p = conn->pending[i];
      if (p.immediate || p.future.wait_for(std::chrono::seconds(0)) ==
                             std::future_status::ready) {
        idx = i;
        break;
      }
    }
    if (idx == kNone) {
      // Nothing ready: block (bounded) on the oldest future, outside the
      // lock so the reader keeps accepting. The reference stays valid —
      // the reader only push_backs and this thread is the only eraser.
      Connection::Pending& head = conn->pending.front();
      lock.unlock();
      head.future.wait_for(std::chrono::milliseconds(1));
      lock.lock();
      continue;
    }
    Connection::Pending p = std::move(conn->pending[idx]);
    conn->pending.erase(conn->pending.begin() +
                        static_cast<std::ptrdiff_t>(idx));
    lock.unlock();

    ResponseFrame resp;
    if (p.immediate) {
      resp = p.resp;
    } else {
      resp.request_id = p.request_id;
      try {
        resp.prediction = p.future.get();
        resp.result = WireResult::kOk;
      } catch (const SchedReject& e) {
        resp.result = wire_result_from_admit(e.status());
      } catch (const std::exception&) {
        resp.result = WireResult::kInternalError;
      }
      if (resp.result == WireResult::kOk) {
        m_.responses_ok->add();
      } else {
        m_.rejects_sched->add();
      }
      // The future resolved, so no forward can still be reading this
      // sample's cached features — safe to drop them.
      if (cfg_.evict_features && p.uid != 0) {
        FeatureCache::global().evict(p.uid);
      }
    }
    // Free the admission slot BEFORE the response bytes go out: a client
    // that reacts to the response immediately (send-one-wait-one) must
    // never race the decrement into a spurious over-limit reject.
    if (p.counts_inflight) {
      lock.lock();
      --conn->inflight;
      lock.unlock();
    }
    if (!p.raw.empty()) {
      write_raw_frame(*conn, p.raw);
    } else {
      write_response(*conn, resp);
    }
    lock.lock();
  }
  // Drained: tell the peer no more responses are coming (FIN), keep the fd
  // open for the reap/stop path to close. The connection counts as closed
  // here — both threads are done with it; reap/stop only reclaims the fd.
  ::shutdown(conn->fd, SHUT_WR);
  conn->finished = true;
  lock.unlock();
  m_.connections_closed->add();
}

void TcpEndpoint::stop() {
  // Serializes concurrent stop() calls; a second call finds the listener
  // closed and the connection list empty and is a no-op.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    stopping_ = true;
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  // Unblock every reader; readers mark done, writers drain every pending
  // entry (each future resolves with a value or a SchedReject), then exit.
  for (auto& c : conns) ::shutdown(c->fd, SHUT_RD);
  for (auto& c : conns) {
    c->reader.join();
    c->writer.join();
    ::close(c->fd);
  }
}

WireStats TcpEndpoint::stats() const {
  WireStats out;
  out.connections_accepted = m_.connections_accepted->value();
  out.connections_closed = m_.connections_closed->value();
  out.frames_in = m_.frames_in->value();
  out.frames_out = m_.frames_out->value();
  out.bytes_in = m_.bytes_in->value();
  out.bytes_out = m_.bytes_out->value();
  out.decode_errors = m_.decode_errors->value();
  out.rejects_backpressure = m_.rejects_backpressure->value();
  out.rejects_payload = m_.rejects_payload->value();
  out.rejects_sched = m_.rejects_sched->value();
  out.responses_ok = m_.responses_ok->value();
  out.stats_requests = m_.stats_requests->value();
  out.write_failures = m_.write_failures->value();
  return out;
}

// ----- TcpClient -----

TcpClient::TcpClient(int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect 127.0.0.1:" + std::to_string(port));
  }
  set_nodelay(fd_);
}

TcpClient::~TcpClient() { close(); }

bool TcpClient::send_request(const RequestFrame& req) {
  return send_raw(encode_request_frame(req));
}

bool TcpClient::send_stats_request(std::uint64_t request_id) {
  StatsFrame f;
  f.request_id = request_id;
  return send_raw(encode_stats_request_frame(f));
}

bool TcpClient::send_raw(const std::string& bytes) {
  if (fd_ < 0) return false;
  return send_all(fd_, bytes.data(), bytes.size());
}

bool TcpClient::recv_response(ResponseFrame& out) {
  if (fd_ < 0) return false;
  char buf[4096];
  for (;;) {
    DecodedFrame frame;
    const WireStatus st = decoder_.next(frame);
    if (st == WireStatus::kFrame) {
      if (frame.type == kWireTypeResponse) {
        out = frame.response;
        return true;
      }
      continue;  // not a response; keep reading
    }
    if (st != WireStatus::kNeedMore) return false;  // poisoned stream
    ssize_t n;
    do {
      n = ::recv(fd_, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;  // EOF before a full response
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

bool TcpClient::recv_stats_response(StatsFrame& out) {
  if (fd_ < 0) return false;
  char buf[4096];
  for (;;) {
    DecodedFrame frame;
    const WireStatus st = decoder_.next(frame);
    if (st == WireStatus::kFrame) {
      if (frame.type == kWireTypeStatsResponse) {
        out = std::move(frame.stats);
        return true;
      }
      continue;  // not a stats response; keep reading
    }
    if (st != WireStatus::kNeedMore) return false;  // poisoned stream
    ssize_t n;
    do {
      n = ::recv(fd_, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;  // EOF before a full response
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

void TcpClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace gnnhls
