// Exports the benchmark suite to disk — the paper's released-dataset
// deliverable: synthetic DFG/CDFG corpora plus the 56 real-case kernels,
// each with Table-1 features, ground-truth QoR and the HLS-report QoR.
// Also writes one example graph in Graphviz DOT for visual inspection.
//
// Build & run:  ./build/examples/export_benchmark \
//                 [--dfg=100 --cdfg=100 --out=benchmark_out]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "dataset/serialize.h"
#include "graph/dot_export.h"
#include "suites/suites.h"
#include "support/flags.h"

using namespace gnnhls;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int dfg_count = flags.get_int("dfg", 100);
  const int cdfg_count = flags.get_int("cdfg", 100);
  const std::string out_dir = flags.get_string("out", "benchmark_out");
  flags.check_all_consumed();

  std::filesystem::create_directories(out_dir);

  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kDfg;
  dc.num_graphs = dfg_count;
  dc.seed = 1;
  const auto dfg = build_synthetic_dataset(dc);
  write_benchmark_file(out_dir + "/synthetic_dfg.bench", dfg);
  std::cout << "wrote " << dfg.size() << " DFG graphs -> " << out_dir
            << "/synthetic_dfg.bench\n";

  dc.kind = GraphKind::kCdfg;
  dc.num_graphs = cdfg_count;
  dc.seed = 2;
  const auto cdfg = build_synthetic_dataset(dc);
  write_benchmark_file(out_dir + "/synthetic_cdfg.bench", cdfg);
  std::cout << "wrote " << cdfg.size() << " CDFG graphs -> " << out_dir
            << "/synthetic_cdfg.bench\n";

  std::vector<Sample> real;
  for (const SuiteProgram& p : all_real_world()) {
    real.push_back(make_sample(p.func, GraphKind::kCdfg, HlsConfig{},
                               p.suite + "/" + p.name));
  }
  write_benchmark_file(out_dir + "/real_world.bench", real);
  std::cout << "wrote " << real.size() << " real-case kernels -> " << out_dir
            << "/real_world.bench\n";

  // One DOT rendering for inspection (dot -Tpng example.dot -o example.png).
  std::ofstream dot(out_dir + "/example_cdfg.dot");
  dot << to_dot(cdfg.front().graph());
  std::cout << "wrote " << out_dir << "/example_cdfg.dot (render with "
            << "`dot -Tpng`)\n";

  // Round-trip self-check.
  const auto reread = read_benchmark_file(out_dir + "/real_world.bench");
  std::cout << "round-trip check: reread " << reread.size()
            << " records, first = " << reread.front().origin << " ("
            << reread.front().graph.num_nodes() << " nodes)\n";
  return 0;
}
