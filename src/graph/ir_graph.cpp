#include "graph/ir_graph.h"

#include <algorithm>

namespace gnnhls {

int IrGraph::add_node(IrNode node) {
  GNNHLS_CHECK(!finalized_, "add_node after finalize()");
  GNNHLS_CHECK(node.bitwidth >= 0 && node.bitwidth <= 256,
               "bitwidth out of [0,256]");
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size()) - 1;
}

void IrGraph::add_edge(int src, int dst, EdgeType type, bool is_back_edge) {
  GNNHLS_CHECK(!finalized_, "add_edge after finalize()");
  GNNHLS_CHECK(src >= 0 && src < num_nodes(), "edge src out of range");
  GNNHLS_CHECK(dst >= 0 && dst < num_nodes(), "edge dst out of range");
  GNNHLS_CHECK(src != dst || is_back_edge,
               "self loop only allowed as back edge");
  if (kind_ == GraphKind::kDfg) {
    GNNHLS_CHECK(!is_back_edge, "DFGs cannot contain back edges");
    GNNHLS_CHECK(type != EdgeType::kControl,
                 "DFGs cannot contain control edges");
  }
  edges_.push_back(IrEdge{src, dst, type, is_back_edge});
}

void IrGraph::finalize() {
  GNNHLS_CHECK(!finalized_, "finalize called twice");
  GNNHLS_CHECK(num_nodes() > 0, "graph has no nodes");

  const std::size_t n = nodes_.size();
  edge_src_.reserve(edges_.size());
  edge_dst_.reserve(edges_.size());
  edge_relation_.reserve(edges_.size());
  in_degree_.assign(n, 0);
  out_degree_.assign(n, 0);
  forward_succ_.assign(n, {});
  forward_pred_.assign(n, {});

  for (const IrEdge& e : edges_) {
    edge_src_.push_back(e.src);
    edge_dst_.push_back(e.dst);
    edge_relation_.push_back(static_cast<int>(e.type) * 2 +
                             (e.is_back_edge ? 1 : 0));
    out_degree_[static_cast<std::size_t>(e.src)]++;
    in_degree_[static_cast<std::size_t>(e.dst)]++;
    if (!e.is_back_edge) {
      forward_succ_[static_cast<std::size_t>(e.src)].push_back(e.dst);
      forward_pred_[static_cast<std::size_t>(e.dst)].push_back(e.src);
    }
  }

  // "Is start of path": node with no incoming non-back edge (paper Table 1:
  // "whether the node is the starting node of a path").
  for (std::size_t i = 0; i < n; ++i) {
    nodes_[i].is_start_of_path = forward_pred_[i].empty();
  }

  finalized_ = true;
  GNNHLS_CHECK(forward_edges_acyclic(),
               "forward edges form a cycle (missing back-edge mark?)");
}

bool IrGraph::forward_edges_acyclic() const {
  // Kahn's algorithm over forward edges.
  const std::size_t n = nodes_.size();
  std::vector<int> indeg(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int s : forward_succ_[i]) indeg[static_cast<std::size_t>(s)]++;
  }
  std::vector<int> queue;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) queue.push_back(static_cast<int>(i));
  }
  std::size_t seen = 0;
  while (!queue.empty()) {
    const int u = queue.back();
    queue.pop_back();
    ++seen;
    for (int s : forward_succ_[static_cast<std::size_t>(u)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) queue.push_back(s);
    }
  }
  return seen == n;
}

std::vector<int> IrGraph::topological_order() const {
  GNNHLS_CHECK(finalized_, "topological_order before finalize()");
  const std::size_t n = nodes_.size();
  std::vector<int> indeg(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int s : forward_succ_[i]) indeg[static_cast<std::size_t>(s)]++;
  }
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> queue;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) queue.push_back(static_cast<int>(i));
  }
  while (!queue.empty()) {
    const int u = queue.back();
    queue.pop_back();
    order.push_back(u);
    for (int s : forward_succ_[static_cast<std::size_t>(u)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) queue.push_back(s);
    }
  }
  GNNHLS_CHECK_EQ(order.size(), n, "graph has a forward cycle");
  return order;
}

int IrGraph::count_back_edges() const {
  return static_cast<int>(
      std::count_if(edges_.begin(), edges_.end(),
                    [](const IrEdge& e) { return e.is_back_edge; }));
}

}  // namespace gnnhls
