#include "dse/explorer.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "hls/hls_flow.h"
#include "obs/trace.h"
#include "support/arena.h"
#include "support/check.h"
#include "support/parallel.h"

namespace gnnhls {

// ----- scorers -----

PredictorScorer::PredictorScorer(
    std::vector<std::pair<Metric, const QorPredictor*>> models)
    : models_(std::move(models)) {
  for (const auto& [metric, predictor] : models_) {
    (void)metric;
    GNNHLS_CHECK(predictor != nullptr, "PredictorScorer: null predictor");
  }
}

const QorPredictor* PredictorScorer::find(Metric metric) const {
  for (const auto& [m, predictor] : models_) {
    if (m == metric) return predictor;
  }
  throw std::invalid_argument("PredictorScorer: no model for metric " +
                              metric_name(metric));
}

std::vector<double> PredictorScorer::score(
    Metric metric, const std::vector<const Sample*>& samples) const {
  return find(metric)->predict_many(samples);
}

std::vector<Metric> PredictorScorer::metrics() const {
  std::vector<Metric> out;
  out.reserve(models_.size());
  for (const auto& [m, predictor] : models_) {
    (void)predictor;
    out.push_back(m);
  }
  return out;
}

ServingScorer::ServingScorer(
    std::vector<std::pair<Metric, const QorPredictor*>> models,
    SchedulerConfig cfg) {
  std::vector<const QorPredictor*> predictors;
  predictors.reserve(models.size());
  metrics_.reserve(models.size());
  for (const auto& [metric, predictor] : models) {
    GNNHLS_CHECK(predictor != nullptr, "ServingScorer: null predictor");
    metrics_.push_back(metric);
    predictors.push_back(predictor);
  }
  sched_ = std::make_unique<ServingScheduler>(std::move(predictors), cfg);
}

std::vector<double> ServingScorer::score(
    Metric metric, const std::vector<const Sample*>& samples) const {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i] == metric) {
      return sched_->predict_many(static_cast<int>(i), samples);
    }
  }
  throw std::invalid_argument("ServingScorer: no model for metric " +
                              metric_name(metric));
}

std::vector<Metric> ServingScorer::metrics() const { return metrics_; }

// ----- explorer -----

Explorer::Explorer(const DesignSpace& space, const Scorer& scorer,
                   DseConfig cfg)
    : space_(space), scorer_(scorer), cfg_(std::move(cfg)) {
  GNNHLS_CHECK(!cfg_.front_metrics.empty(),
               "Explorer: front_metrics must not be empty");
  for (std::size_t i = 0; i < cfg_.front_metrics.size(); ++i) {
    for (std::size_t j = i + 1; j < cfg_.front_metrics.size(); ++j) {
      GNNHLS_CHECK(cfg_.front_metrics[i] != cfg_.front_metrics[j],
                   "Explorer: duplicate front metric");
    }
  }
  GNNHLS_CHECK(cfg_.top_k >= 1, "Explorer: top_k must be >= 1");
  const std::vector<Metric> served = scorer_.metrics();
  for (Metric m : scored_metrics()) {
    GNNHLS_CHECK(std::find(served.begin(), served.end(), m) != served.end(),
                 "Explorer: scorer has no model for a required metric");
  }
  // Lower once, after validation: every strategy run starts from copies of
  // these candidates (same Sample uids => one FeatureCache entry per
  // candidate for this explorer's lifetime, however many runs happen).
  const std::vector<DesignPoint> points = space_.enumerate();
  const int n = static_cast<int>(points.size());
  // Each shard fills its own pre-sized slot, so candidate order (and
  // therefore every downstream index) is independent of the pool width.
  std::vector<std::optional<DseCandidate>> slots(
      static_cast<std::size_t>(n));
  parallel_shards(n, [&](int i) {
    const std::size_t s = static_cast<std::size_t>(i);
    slots[s].emplace(
        DseCandidate{points[s], space_.lower_candidate(points[s]), {}, false,
                     0.0});
  });
  base_candidates_.reserve(static_cast<std::size_t>(n));
  for (auto& slot : slots) base_candidates_.push_back(std::move(*slot));
}

std::vector<Metric> Explorer::scored_metrics() const {
  std::vector<Metric> metrics = cfg_.front_metrics;
  if (std::find(metrics.begin(), metrics.end(), cfg_.rank_metric) ==
      metrics.end()) {
    metrics.push_back(cfg_.rank_metric);
  }
  return metrics;
}

void Explorer::score_round(std::vector<DseCandidate>& candidates,
                           const std::vector<int>& subset,
                           const std::vector<Metric>& metrics,
                           DseResult& r) const {
  const ObsSpan span(cfg_.obs.trace, "score_round", "dse");
  std::vector<const Sample*> samples;
  samples.reserve(subset.size());
  for (int i : subset) {
    samples.push_back(&candidates[static_cast<std::size_t>(i)].sample);
  }
  for (Metric m : metrics) {
    std::vector<double> pred;
    {
      // One scoring call's tape temporaries per arena reset; the doubles
      // use std::allocator and survive the scope.
      const ArenaScope scratch(cfg_.arena ? &thread_scratch_arena()
                                          : nullptr);
      pred = scorer_.score(m, samples);
    }
    GNNHLS_CHECK_EQ(pred.size(), subset.size(), "scorer output size");
    for (std::size_t j = 0; j < subset.size(); ++j) {
      candidates[static_cast<std::size_t>(subset[j])]
          .predicted[static_cast<std::size_t>(m)] = pred[j];
    }
    ++r.scorer_calls;
    r.scored_graphs += static_cast<int>(subset.size());
  }
}

void Explorer::synthesize(std::vector<DseCandidate>& candidates,
                          const std::vector<int>& subset, DseResult& r) const {
  const ObsSpan span(cfg_.obs.trace, "synthesize", "dse");
  parallel_shards(static_cast<int>(subset.size()), [&](int j) {
    DseCandidate& c =
        candidates[static_cast<std::size_t>(subset[static_cast<std::size_t>(j)])];
    const HlsOutcome outcome = run_hls_flow(c.sample.prog, c.point.hls);
    c.sample.truth = outcome.implemented;
    c.sample.hls_report = outcome.reported;
    c.latency_cycles = outcome.latency_cycles;
    c.synthesized = true;
  });
  r.hls_runs += static_cast<int>(subset.size());
}

namespace {

/// Pareto front restricted to `subset`, mapped back to candidate indices.
/// `value(i, m)` reads axis m of candidate i.
template <typename ValueFn>
std::vector<int> front_over(const std::vector<int>& subset,
                            const std::vector<Metric>& axes, ValueFn value) {
  std::vector<std::vector<double>> rows;
  rows.reserve(subset.size());
  for (int i : subset) {
    std::vector<double> row;
    row.reserve(axes.size());
    for (Metric m : axes) row.push_back(value(i, m));
    rows.push_back(std::move(row));
  }
  std::vector<int> front;
  for (int local : pareto_front(rows)) {
    front.push_back(subset[static_cast<std::size_t>(local)]);
  }
  return front;  // ascending: subset is ascending and pareto_front is too
}

}  // namespace

void Explorer::finalize(DseResult& r,
                        const std::vector<int>& synthesized) const {
  r.front = front_over(synthesized, cfg_.front_metrics, [&](int i, Metric m) {
    return metric_of(r.candidates[static_cast<std::size_t>(i)].sample.truth,
                     m);
  });
  r.predicted_front =
      front_over(all_indices(static_cast<int>(r.candidates.size())),
                 cfg_.front_metrics, [&](int i, Metric m) {
                   return r.candidates[static_cast<std::size_t>(i)]
                       .predicted[static_cast<std::size_t>(m)];
                 });
  for (int i : synthesized) {
    const double v = metric_of(
        r.candidates[static_cast<std::size_t>(i)].sample.truth,
        cfg_.rank_metric);
    if (r.best < 0 ||
        v < metric_of(
                r.candidates[static_cast<std::size_t>(r.best)].sample.truth,
                cfg_.rank_metric)) {
      r.best = i;  // strict < keeps the lowest index on ties
    }
  }
}

DseResult Explorer::exhaustive() const {
  DseResult r;
  r.candidates = base_candidates_;
  const std::vector<int> all =
      all_indices(static_cast<int>(r.candidates.size()));
  score_round(r.candidates, all, scored_metrics(), r);
  r.survivors_per_round.push_back(static_cast<int>(all.size()));
  synthesize(r.candidates, all, r);
  finalize(r, all);
  return r;
}

DseResult Explorer::successive_halving() const {
  DseResult r;
  r.candidates = base_candidates_;
  std::vector<int> survivors =
      all_indices(static_cast<int>(r.candidates.size()));
  r.survivors_per_round.push_back(static_cast<int>(survivors.size()));
  // Round 0 scores every metric over the full space (predicted_front needs
  // them); later rounds re-score only the rank metric over the survivors —
  // bit-identical values by the predict_many contract, but they exercise
  // the batched scoring path at each round's shrinking size.
  score_round(r.candidates, survivors, scored_metrics(), r);
  while (static_cast<int>(survivors.size()) > cfg_.top_k) {
    const ObsSpan round_span(cfg_.obs.trace, "halving_round", "dse");
    const int keep = std::max(
        cfg_.top_k, (static_cast<int>(survivors.size()) + 1) / 2);
    std::sort(survivors.begin(), survivors.end(), [&](int a, int b) {
      const double pa = r.candidates[static_cast<std::size_t>(a)]
                            .predicted[static_cast<std::size_t>(
                                cfg_.rank_metric)];
      const double pb = r.candidates[static_cast<std::size_t>(b)]
                            .predicted[static_cast<std::size_t>(
                                cfg_.rank_metric)];
      if (pa != pb) return pa < pb;
      return a < b;  // deterministic tie-break: lower index survives
    });
    survivors.resize(static_cast<std::size_t>(keep));
    std::sort(survivors.begin(), survivors.end());
    r.survivors_per_round.push_back(keep);
    if (keep > cfg_.top_k) {
      score_round(r.candidates, survivors, {cfg_.rank_metric}, r);
    }
  }
  synthesize(r.candidates, survivors, r);
  finalize(r, survivors);
  return r;
}

}  // namespace gnnhls
