// Error-handling macros used across the library.
//
// GNNHLS_CHECK is for preconditions/invariants whose violation indicates a
// caller bug or corrupted input; it throws std::invalid_argument so callers
// (and tests) can observe the failure instead of aborting.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gnnhls {

[[noreturn]] inline void throw_check_failure(const char* file, int line,
                                             const char* expr,
                                             const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace gnnhls

#define GNNHLS_CHECK(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::gnnhls::throw_check_failure(__FILE__, __LINE__, #cond, (msg));  \
    }                                                                   \
  } while (false)

#define GNNHLS_CHECK_EQ(a, b, msg) GNNHLS_CHECK((a) == (b), (msg))
