#include "frontend/lower.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace gnnhls {

namespace {

/// An SSA value: a node id plus its type.
struct Value {
  int node = -1;
  int bits = 32;
  bool is_signed = true;
};

struct ArrayInfo {
  int elem_bits = 32;
  int size = 0;
  int last_store = -1;  // node id of the most recent store (memory dep)
  bool is_param = false;
};

Opcode opcode_for_bin(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd: return Opcode::kAdd;
    case BinOpKind::kSub: return Opcode::kSub;
    case BinOpKind::kMul: return Opcode::kMul;
    case BinOpKind::kDiv: return Opcode::kSDiv;
    case BinOpKind::kRem: return Opcode::kSRem;
    case BinOpKind::kAnd: return Opcode::kAnd;
    case BinOpKind::kOr: return Opcode::kOr;
    case BinOpKind::kXor: return Opcode::kXor;
    case BinOpKind::kShl: return Opcode::kShl;
    case BinOpKind::kShr: return Opcode::kAShr;
    case BinOpKind::kLt:
    case BinOpKind::kGt:
    case BinOpKind::kLe:
    case BinOpKind::kGe:
    case BinOpKind::kEq:
    case BinOpKind::kNe:
      return Opcode::kICmp;
  }
  return Opcode::kAdd;
}

/// Shared lowering machinery for both graph kinds. In DFG mode there are no
/// block nodes and exactly one BasicBlockInfo; in CDFG mode the full
/// structured-SSA construction runs.
class Lowering {
 public:
  Lowering(const Function& f, GraphKind kind)
      : func_(f), kind_(kind), out_(kind, f.name) {}

  LoweredProgram run() {
    if (kind_ == GraphKind::kDfg) {
      GNNHLS_CHECK(!func_.has_control_flow(),
                   "DFG lowering requires a straight-line function body");
    }
    open_block(/*loop_depth=*/0, /*exec=*/1.0, /*is_header=*/false);
    lower_params();
    lower_stmts(func_.body);
    finish();
    return std::move(out_);
  }

 private:
  // ----- block management -----

  int open_block(int loop_depth, double exec, bool is_header) {
    BasicBlockInfo info;
    info.id = static_cast<int>(out_.blocks.size());
    info.loop_depth = loop_depth;
    info.exec_count = exec;
    info.is_loop_header = is_header;
    if (kind_ == GraphKind::kCdfg) {
      IrNode n;
      n.type = NodeGeneralType::kBlockNode;
      n.opcode = Opcode::kBlock;
      n.bitwidth = 0;
      n.cluster_group = std::min(info.id, 256);
      info.block_node = out_.graph.add_node(n);
    }
    out_.blocks.push_back(info);
    current_block_ = info.id;
    return info.id;
  }

  BasicBlockInfo& block() {
    return out_.blocks[static_cast<std::size_t>(current_block_)];
  }

  /// Adds an operation node to the current block.
  int new_op(Opcode op, int bits,
             NodeGeneralType type = NodeGeneralType::kOperation) {
    IrNode n;
    n.type = type;
    n.opcode = op;
    n.bitwidth = std::min(bits, 256);
    n.cluster_group = std::min(current_block_, 256);
    const int id = out_.graph.add_node(n);
    block().ops.push_back(id);
    return id;
  }

  void data_edge(int src, int dst, bool back = false) {
    out_.graph.add_edge(src, dst, EdgeType::kData, back);
  }
  void control_edge(int src, int dst, bool back = false) {
    out_.graph.add_edge(src, dst, EdgeType::kControl, back);
  }
  void memory_edge(int src, int dst, bool back = false) {
    out_.graph.add_edge(src, dst, EdgeType::kMemory, back);
  }

  // ----- constants & ports -----

  /// Constants are shared per (value, bits) within a block scope, matching
  /// compiler behaviour where literals are uniqued.
  int const_node(long value, int bits) {
    const auto key = std::make_pair(value, bits);
    const auto it = const_cache_.find(key);
    if (it != const_cache_.end()) return it->second;
    IrNode n;
    n.type = NodeGeneralType::kConstant;
    n.opcode = Opcode::kConst;
    n.bitwidth = std::min(bits, 256);
    n.cluster_group = std::min(current_block_, 256);
    n.is_const = true;
    const int id = out_.graph.add_node(n);
    const_cache_[key] = id;
    return id;
  }

  void lower_params() {
    for (const Param& p : func_.params) {
      if (p.array_size > 0) {
        arrays_[p.name] =
            ArrayInfo{p.type.bits, p.array_size, /*last_store=*/-1,
                      /*is_param=*/true};
      } else {
        IrNode n;
        n.type = NodeGeneralType::kPort;
        n.opcode = Opcode::kReadPort;
        n.bitwidth = std::min(p.type.bits, 256);
        n.cluster_group = std::min(current_block_, 256);
        const int id = out_.graph.add_node(n);
        env_[p.name] = Value{id, p.type.bits, p.type.is_signed};
      }
    }
  }

  // ----- expressions -----

  Value lower_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kVarRef: {
        const auto it = env_.find(e.name);
        GNNHLS_CHECK(it != env_.end(), "use of undefined variable " + e.name);
        return it->second;
      }
      case Expr::Kind::kIntLit:
        return Value{const_node(e.value, e.bits), e.bits, e.is_signed};
      case Expr::Kind::kBinary: {
        const Value lhs = lower_expr(*e.children[0]);
        const Value rhs = lower_expr(*e.children[1]);
        const bool cmp = is_comparison(e.bin_op);
        const int bits = cmp ? 1 : std::max(lhs.bits, rhs.bits);
        const int id = new_op(opcode_for_bin(e.bin_op), cmp
                                  ? std::max(lhs.bits, rhs.bits)
                                  : bits);
        data_edge(lhs.node, id);
        data_edge(rhs.node, id);
        return Value{id, bits, lhs.is_signed || rhs.is_signed};
      }
      case Expr::Kind::kUnary: {
        const Value operand = lower_expr(*e.children[0]);
        // neg x -> 0 - x ; ~x -> x xor -1 (LLVM canonical forms)
        const int id = new_op(
            e.un_op == UnOpKind::kNeg ? Opcode::kSub : Opcode::kXor,
            operand.bits);
        const int zero = const_node(e.un_op == UnOpKind::kNeg ? 0 : -1,
                                    operand.bits);
        if (e.un_op == UnOpKind::kNeg) {
          data_edge(zero, id);
          data_edge(operand.node, id);
        } else {
          data_edge(operand.node, id);
          data_edge(zero, id);
        }
        return Value{id, operand.bits, operand.is_signed};
      }
      case Expr::Kind::kArrayRef:
        return lower_array_load(e);
      case Expr::Kind::kSelect: {
        const Value c = lower_expr(*e.children[0]);
        const Value a = lower_expr(*e.children[1]);
        const Value b = lower_expr(*e.children[2]);
        const int bits = std::max(a.bits, b.bits);
        const int id = new_op(Opcode::kSelect, bits);
        data_edge(c.node, id);
        data_edge(a.node, id);
        data_edge(b.node, id);
        return Value{id, bits, a.is_signed || b.is_signed};
      }
      case Expr::Kind::kCast: {
        const Value v = lower_expr(*e.children[0]);
        Opcode op = Opcode::kTrunc;
        if (e.bits > v.bits) op = v.is_signed ? Opcode::kSExt : Opcode::kZExt;
        const int id = new_op(op, e.bits);
        data_edge(v.node, id);
        return Value{id, e.bits, e.is_signed};
      }
    }
    GNNHLS_CHECK(false, "unreachable expression kind");
    return {};
  }

  ArrayInfo& array(const std::string& name) {
    const auto it = arrays_.find(name);
    GNNHLS_CHECK(it != arrays_.end(), "use of undefined array " + name);
    return it->second;
  }

  Value lower_array_load(const Expr& e) {
    ArrayInfo& info = array(e.name);
    const Value idx = lower_expr(*e.children[0]);
    const int gep = new_op(Opcode::kGetElementPtr, 32);
    data_edge(idx.node, gep);
    const int load = new_op(Opcode::kLoad, info.elem_bits);
    data_edge(gep, load);
    if (info.last_store >= 0) memory_edge(info.last_store, load);
    return Value{load, info.elem_bits, true};
  }

  void lower_array_store(const std::string& name, const Expr& index,
                         const Expr& value) {
    ArrayInfo& info = array(name);
    const Value idx = lower_expr(index);
    const Value val = lower_expr(value);
    const int gep = new_op(Opcode::kGetElementPtr, 32);
    data_edge(idx.node, gep);
    const int store = new_op(Opcode::kStore, info.elem_bits);
    data_edge(gep, store);
    data_edge(val.node, store);
    if (info.last_store >= 0) memory_edge(info.last_store, store);
    info.last_store = store;
  }

  // ----- statements -----

  void lower_stmts(const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts) lower_stmt(*s);
  }

  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kDeclScalar: {
        Value v;
        if (s.expr) {
          v = lower_expr(*s.expr);
        } else {
          v = Value{const_node(0, s.type.bits), s.type.bits,
                    s.type.is_signed};
        }
        v.bits = s.type.bits;
        v.is_signed = s.type.is_signed;
        env_[s.name] = v;
        declared_bits_[s.name] = s.type;
        return;
      }
      case Stmt::Kind::kDeclArray: {
        // A local array becomes an alloca node (storage object).
        const int alloca_id = new_op(Opcode::kAlloca, s.type.bits);
        arrays_[s.name] = ArrayInfo{s.type.bits, s.array_size, alloca_id,
                                    /*is_param=*/false};
        return;
      }
      case Stmt::Kind::kAssign: {
        Value v = lower_expr(*s.expr);
        const auto it = declared_bits_.find(s.name);
        if (it != declared_bits_.end()) {
          v.bits = it->second.bits;
          v.is_signed = it->second.is_signed;
        }
        env_[s.name] = v;
        return;
      }
      case Stmt::Kind::kAssignArray:
        lower_array_store(s.name, *s.index, *s.expr);
        return;
      case Stmt::Kind::kIf:
        lower_if(s);
        return;
      case Stmt::Kind::kFor:
        lower_for(s);
        return;
      case Stmt::Kind::kReturn: {
        if (s.expr) {
          const Value v = lower_expr(*s.expr);
          const int port = new_op(Opcode::kWritePort, v.bits,
                                  NodeGeneralType::kPort);
          data_edge(v.node, port);
        }
        if (kind_ == GraphKind::kCdfg) {
          const int r = new_op(Opcode::kRet, 0);
          control_edge(block().block_node, r);
        }
        return;
      }
    }
  }

  /// Variables (re)assigned anywhere inside a statement list (recursive) —
  /// candidates for phi nodes.
  static void collect_assigned(const std::vector<StmtPtr>& stmts,
                               std::set<std::string>& names) {
    for (const auto& s : stmts) {
      if (s->kind == Stmt::Kind::kAssign ||
          s->kind == Stmt::Kind::kDeclScalar) {
        names.insert(s->name);
      }
      if (s->kind == Stmt::Kind::kFor) names.insert(s->name);
      collect_assigned(s->body, names);
      collect_assigned(s->else_body, names);
    }
  }

  void lower_if(const Stmt& s) {
    GNNHLS_CHECK(kind_ == GraphKind::kCdfg, "if statement requires CDFG");
    const Value cond = lower_expr(*s.expr);
    const int br = new_op(Opcode::kBr, 1);
    data_edge(cond.node, br);
    control_edge(block().block_node, br);

    const int depth = block().loop_depth;
    const double exec = block().exec_count;
    const auto env_before = env_;

    // then block
    const int then_bb = open_block(depth, exec * 0.5, false);
    control_edge(br, out_.blocks[static_cast<std::size_t>(then_bb)].block_node);
    lower_stmts(s.body);
    const auto env_then = env_;
    const int then_end_bb = current_block_;

    // else block
    env_ = env_before;
    const int else_bb = open_block(depth, exec * 0.5, false);
    control_edge(br, out_.blocks[static_cast<std::size_t>(else_bb)].block_node);
    lower_stmts(s.else_body);
    const auto env_else = env_;
    const int else_end_bb = current_block_;

    // merge block with phis for divergent values
    const int merge_bb = open_block(depth, exec, false);
    const int merge_node =
        out_.blocks[static_cast<std::size_t>(merge_bb)].block_node;
    const int then_br = branch_to(then_end_bb, merge_node);
    const int else_br = branch_to(else_end_bb, merge_node);
    (void)then_br;
    (void)else_br;

    env_ = env_before;
    std::set<std::string> assigned;
    collect_assigned(s.body, assigned);
    collect_assigned(s.else_body, assigned);
    for (const auto& name : assigned) {
      const auto t = env_then.find(name);
      const auto e = env_else.find(name);
      // Locals declared inside the branch die there.
      if (t == env_then.end() || e == env_else.end()) continue;
      if (t->second.node == e->second.node) {
        env_[name] = t->second;
        continue;
      }
      const int bits = std::max(t->second.bits, e->second.bits);
      const int phi = new_op(Opcode::kPhi, bits);
      data_edge(t->second.node, phi);
      data_edge(e->second.node, phi);
      control_edge(merge_node, phi);
      env_[name] = Value{phi, bits,
                         t->second.is_signed || e->second.is_signed};
    }
  }

  /// Terminates `bb` with an unconditional branch to `target_block_node`.
  int branch_to(int bb, int target_block_node, bool back = false) {
    const int saved = current_block_;
    current_block_ = bb;
    const int br = new_op(Opcode::kBr, 0);
    control_edge(out_.blocks[static_cast<std::size_t>(bb)].block_node, br);
    control_edge(br, target_block_node, back);
    current_block_ = saved;
    return br;
  }

  void lower_for(const Stmt& s) {
    GNNHLS_CHECK(kind_ == GraphKind::kCdfg, "for statement requires CDFG");
    const long trip = std::max<long>(s.trip_count(), 1);
    const int preheader_bb = current_block_;
    const int depth = block().loop_depth;
    const double exec = block().exec_count;

    // Values that change across iterations need header phis.
    std::set<std::string> carried;
    collect_assigned(s.body, carried);
    carried.insert(s.name);  // induction variable

    // header block
    const int header_bb =
        open_block(depth + 1, exec, /*is_header=*/true);
    const int header_node =
        out_.blocks[static_cast<std::size_t>(header_bb)].block_node;
    branch_to(preheader_bb, header_node);

    // phis: initial value edge now, loop-carried back edge after the body.
    std::map<std::string, int> phis;
    const auto env_pre = env_;
    current_block_ = header_bb;
    for (const auto& name : carried) {
      Value init;
      if (name == s.name) {
        init = Value{const_node(s.loop_begin, 32), 32, true};
      } else {
        const auto it = env_pre.find(name);
        if (it == env_pre.end()) continue;  // declared inside the loop body
        init = it->second;
      }
      const int phi = new_op(Opcode::kPhi, init.bits);
      data_edge(init.node, phi);
      control_edge(header_node, phi);
      phis[name] = phi;
      env_[name] = Value{phi, init.bits, init.is_signed};
    }

    // exit test: icmp(i < end); br -> {body, exit}
    const int bound = const_node(s.loop_end, 32);
    const int cmp = new_op(Opcode::kICmp, 32);
    data_edge(phis.at(s.name), cmp);
    data_edge(bound, cmp);
    const int br = new_op(Opcode::kBr, 1);
    data_edge(cmp, br);
    control_edge(header_node, br);

    // body
    const double body_exec = exec * static_cast<double>(trip);
    const int body_bb = open_block(depth + 1, body_exec, false);
    control_edge(br, out_.blocks[static_cast<std::size_t>(body_bb)].block_node);
    lower_stmts(s.body);

    // latch: i += step, back edges to the header
    const int step_const = const_node(s.loop_step, 32);
    const int inc = new_op(Opcode::kAdd, 32);
    data_edge(env_.at(s.name).node, inc);
    data_edge(step_const, inc);
    env_[s.name] = Value{inc, 32, true};
    const int latch_bb = current_block_;
    branch_to(latch_bb, header_node, /*back=*/true);

    for (const auto& [name, phi] : phis) {
      const auto it = env_.find(name);
      if (it == env_.end()) continue;
      if (it->second.node != phi) {
        data_edge(it->second.node, phi, /*back=*/true);
      }
    }

    // exit block; values after the loop are the header phis
    const int exit_bb = open_block(depth, exec, false);
    control_edge(br, out_.blocks[static_cast<std::size_t>(exit_bb)].block_node);
    env_ = env_pre;
    for (const auto& [name, phi] : phis) {
      const auto pre = env_pre.find(name);
      const int bits = pre != env_pre.end() ? pre->second.bits : 32;
      env_[name] = Value{phi, bits, true};
    }
  }

  void finish() {
    // Straight-line DFG programs with outputs only through arrays still
    // need at least one sink; ensure live scalar results feed write ports.
    if (kind_ == GraphKind::kDfg) {
      ensure_dfg_outputs();
    }
    out_.graph.finalize();
    if (kind_ == GraphKind::kDfg) assign_dfg_clusters();
  }

  /// If the function never returned a value, expose every live scalar that
  /// is not consumed by anything as a write port so the dataflow has sinks
  /// (ldrgen programs print their liveout set; this models that).
  void ensure_dfg_outputs() {
    std::set<int> has_consumer;
    for (const IrEdge& e : out_.graph.edges()) has_consumer.insert(e.src);
    for (const auto& [name, v] : env_) {
      if (has_consumer.count(v.node)) continue;
      if (out_.graph.node(v.node).type == NodeGeneralType::kPort) continue;
      const int port =
          new_op(Opcode::kWritePort, v.bits, NodeGeneralType::kPort);
      data_edge(v.node, port);
      has_consumer.insert(v.node);
    }
  }

  /// DFG cluster group: longest-path depth from any source (a deterministic
  /// stand-in for the front end's operation clustering).
  void assign_dfg_clusters() {
    const auto order = out_.graph.topological_order();
    std::vector<int> depth(static_cast<std::size_t>(out_.graph.num_nodes()),
                           0);
    for (int u : order) {
      for (int v : out_.graph.forward_succ()[static_cast<std::size_t>(u)]) {
        depth[static_cast<std::size_t>(v)] = std::max(
            depth[static_cast<std::size_t>(v)],
            depth[static_cast<std::size_t>(u)] + 1);
      }
    }
    for (int i = 0; i < out_.graph.num_nodes(); ++i) {
      out_.graph.mutable_node(i).cluster_group =
          std::min(depth[static_cast<std::size_t>(i)], 256);
    }
  }

  const Function& func_;
  GraphKind kind_;
  LoweredProgram out_;
  int current_block_ = 0;
  std::map<std::string, Value> env_;
  std::map<std::string, ScalarType> declared_bits_;
  std::map<std::string, ArrayInfo> arrays_;
  std::map<std::pair<long, int>, int> const_cache_;
};

}  // namespace

LoweredProgram lower_to_dfg(const Function& f) {
  return Lowering(f, GraphKind::kDfg).run();
}

LoweredProgram lower_to_cdfg(const Function& f) {
  return Lowering(f, GraphKind::kCdfg).run();
}

LoweredProgram lower(const Function& f) {
  return f.has_control_flow() ? lower_to_cdfg(f) : lower_to_dfg(f);
}

}  // namespace gnnhls
