#include "tensor/segment_ops.h"

#include <algorithm>

#include "support/check.h"
#include "support/parallel.h"

namespace gnnhls {

namespace {

/// Below this many output elements a kernel runs its serial loop inline:
/// the arithmetic is cheaper than one pool wakeup. Thresholds only steer
/// scheduling — every path produces bit-identical results.
constexpr std::size_t kMinParallelElems = 1U << 13;

/// Row grain so each gather chunk moves at least ~kMinParallelElems floats.
int gather_grain(int cols) {
  return static_cast<int>(kMinParallelElems /
                          static_cast<std::size_t>(std::max(cols, 1))) +
         1;
}

}  // namespace

SegmentPartition SegmentPartition::build(const std::vector<int>& seg,
                                         int segments) {
  GNNHLS_CHECK(segments >= 0, "SegmentPartition: negative segment count");
  SegmentPartition part;
  part.segments = segments;
  part.offsets.assign(static_cast<std::size_t>(segments) + 1, 0);
  for (int s : seg) {
    GNNHLS_CHECK(s >= 0 && s < segments, "SegmentPartition: bad segment id");
    part.offsets[static_cast<std::size_t>(s) + 1]++;
  }
  for (int s = 0; s < segments; ++s) {
    part.offsets[static_cast<std::size_t>(s) + 1] +=
        part.offsets[static_cast<std::size_t>(s)];
  }
  part.order.resize(seg.size());
  std::vector<int> cursor(part.offsets.begin(), part.offsets.end() - 1);
  // Ascending i keeps each segment's slice in ascending source order — the
  // stability the fixed-order reduction rule relies on.
  for (std::size_t i = 0; i < seg.size(); ++i) {
    part.order[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(seg[i])]++)] = static_cast<int>(i);
  }
  return part;
}

SegmentPartitionPtr make_segment_partition(const std::vector<int>& seg,
                                           int segments) {
  return std::make_shared<const SegmentPartition>(
      SegmentPartition::build(seg, segments));
}

void gather_rows_into(const Matrix& src, const std::vector<int>& idx,
                      Matrix& out) {
  GNNHLS_CHECK_EQ(out.rows(), static_cast<int>(idx.size()),
                  "gather_rows_into: output row count mismatch");
  GNNHLS_CHECK_EQ(out.cols(), src.cols(),
                  "gather_rows_into: column mismatch");
  const int cols = src.cols();
  parallel_for(0, static_cast<int>(idx.size()), gather_grain(cols),
               [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      const int r = idx[static_cast<std::size_t>(i)];
      GNNHLS_CHECK(r >= 0 && r < src.rows(), "gather_rows_into: bad index");
      std::copy(src.row_ptr(r), src.row_ptr(r) + cols, out.row_ptr(i));
    }
  });
}

void gather_add_rows_into(const Matrix& src, const std::vector<int>& idx,
                          Matrix& out) {
  GNNHLS_CHECK_EQ(out.rows(), static_cast<int>(idx.size()),
                  "gather_add_rows_into: output row count mismatch");
  GNNHLS_CHECK_EQ(out.cols(), src.cols(),
                  "gather_add_rows_into: column mismatch");
  const int cols = src.cols();
  parallel_for(0, static_cast<int>(idx.size()), gather_grain(cols),
               [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      const int r = idx[static_cast<std::size_t>(i)];
      GNNHLS_CHECK(r >= 0 && r < src.rows(),
                   "gather_add_rows_into: bad index");
      const float* s = src.row_ptr(r);
      float* o = out.row_ptr(i);
      for (int j = 0; j < cols; ++j) o[j] += s[j];
    }
  });
}

void scatter_add_rows_into(const Matrix& src, const SegmentPartition& part,
                           Matrix& out) {
  GNNHLS_CHECK_EQ(static_cast<int>(part.order.size()), src.rows(),
                  "scatter_add_rows_into: partition covers different rows");
  GNNHLS_CHECK_EQ(out.rows(), part.segments,
                  "scatter_add_rows_into: output row count mismatch");
  GNNHLS_CHECK_EQ(out.cols(), src.cols(),
                  "scatter_add_rows_into: column mismatch");
  const int cols = src.cols();
  const auto run = [&](int seg_lo, int seg_hi) {
    for (int s = seg_lo; s < seg_hi; ++s) {
      const int lo = part.offsets[static_cast<std::size_t>(s)];
      const int hi = part.offsets[static_cast<std::size_t>(s) + 1];
      float* o = out.row_ptr(s);
      for (int e = lo; e < hi; ++e) {
        const float* row =
            src.row_ptr(part.order[static_cast<std::size_t>(e)]);
        for (int j = 0; j < cols; ++j) o[j] += row[j];
      }
    }
  };
  const std::size_t work =
      src.size() + static_cast<std::size_t>(part.segments);
  if (ThreadPool::global().num_workers() == 0 || work < kMinParallelElems) {
    run(0, part.segments);
    return;
  }
  // Edge-count-balanced destination ranges: min_cost keeps each range worth
  // a wakeup, max_ranges bounds scheduling overhead. Boundaries never
  // change results — only which task owns which destination rows.
  const int min_cost = static_cast<int>(
      kMinParallelElems / static_cast<std::size_t>(std::max(cols, 1)) + 1);
  const std::vector<int> bounds = balanced_boundaries(
      part.offsets, ThreadPool::global().num_threads() * 4, min_cost);
  parallel_over_ranges(bounds, run);
}

void scatter_add_rows_auto(const Matrix& src, const std::vector<int>& seg,
                           const SegmentPartitionPtr& part, Matrix& out) {
  if (part != nullptr) {
    GNNHLS_CHECK_EQ(static_cast<int>(part->order.size()),
                    static_cast<int>(seg.size()),
                    "scatter_add_rows_auto: partition covers different rows");
#ifndef NDEBUG
    // A stale cached partition (indices mutated after build_partitions()
    // without a rebuild) passes every size check yet silently scatters to
    // the wrong rows while the backward uses the raw indices. Debug builds
    // — including the CI sanitizer jobs — verify full consistency.
    for (int s = 0; s < part->segments; ++s) {
      for (int e = part->offsets[static_cast<std::size_t>(s)];
           e < part->offsets[static_cast<std::size_t>(s) + 1]; ++e) {
        GNNHLS_CHECK_EQ(seg[static_cast<std::size_t>(
                            part->order[static_cast<std::size_t>(e)])],
                        s, "scatter_add_rows_auto: stale partition "
                           "(rebuild after mutating indices)");
      }
    }
#endif
    scatter_add_rows_into(src, *part, out);
    return;
  }
  if (ThreadPool::global().num_workers() > 0 &&
      src.size() >= kMinParallelElems) {
    scatter_add_rows_into(src, SegmentPartition::build(seg, out.rows()), out);
    return;
  }
  scatter_add_rows_serial(src, seg, out);
}

void scatter_add_rows_serial(const Matrix& src, const std::vector<int>& seg,
                             Matrix& out) {
  GNNHLS_CHECK_EQ(static_cast<int>(seg.size()), src.rows(),
                  "scatter_add_rows_serial: one segment id per row required");
  GNNHLS_CHECK_EQ(out.cols(), src.cols(),
                  "scatter_add_rows_serial: column mismatch");
  for (std::size_t i = 0; i < seg.size(); ++i) {
    GNNHLS_CHECK(seg[i] >= 0 && seg[i] < out.rows(),
                 "scatter_add_rows_serial: bad index");
    const float* s = src.row_ptr(static_cast<int>(i));
    float* o = out.row_ptr(seg[i]);
    for (int j = 0; j < src.cols(); ++j) o[j] += s[j];
  }
}

}  // namespace gnnhls
