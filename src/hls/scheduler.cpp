#include "hls/scheduler.h"

#include <algorithm>
#include <map>

namespace gnnhls {

bool has_constant_shift_amount(const IrGraph& graph, int node) {
  const Opcode op = graph.node(node).opcode;
  if (op != Opcode::kShl && op != Opcode::kLShr && op != Opcode::kAShr) {
    return false;
  }
  // The shift amount is the second data operand; we accept "any operand is
  // a constant" since operand order is not tracked separately.
  for (const IrEdge& e : graph.edges()) {
    if (e.dst == node && e.type == EdgeType::kData &&
        graph.node(e.src).type == NodeGeneralType::kConstant) {
      return true;
    }
  }
  return false;
}

int data_fanin(const IrGraph& graph, int node) {
  int n = 0;
  for (const IrEdge& e : graph.edges()) {
    if (e.dst == node && e.type == EdgeType::kData) ++n;
  }
  return n;
}

namespace {

struct Avail {
  int cycle = 0;
  double ns = 0.0;
};

}  // namespace

ProgramSchedule schedule_program(const LoweredProgram& prog,
                                 const ResourceLibrary& lib,
                                 const HlsConfig& cfg) {
  const IrGraph& g = prog.graph;
  GNNHLS_CHECK(g.finalized(), "schedule_program: graph not finalized");
  const double budget = cfg.clock_ns * (1.0 - cfg.clock_uncertainty);
  GNNHLS_CHECK(budget > 0.0, "schedule_program: empty clock budget");

  // Scheduling dependencies: incoming data/memory edges, forward only.
  std::vector<std::vector<int>> preds(static_cast<std::size_t>(g.num_nodes()));
  for (const IrEdge& e : g.edges()) {
    if (e.is_back_edge) continue;
    if (e.type == EdgeType::kData || e.type == EdgeType::kMemory) {
      preds[static_cast<std::size_t>(e.dst)].push_back(e.src);
    }
  }

  ProgramSchedule ps;
  ps.blocks.reserve(prog.blocks.size());

  std::map<int, Avail> avail;        // node -> availability in *its* block
  std::map<int, int> block_of_node;  // scheduled datapath node -> block id
  std::map<int, const OpSchedule*> sched_of_node;

  for (const BasicBlockInfo& bb : prog.blocks) {
    BlockSchedule bs;
    bs.block_id = bb.id;
    bs.ops.reserve(bb.ops.size());

    for (int node : bb.ops) {
      const IrNode& n = g.node(node);
      const OpCost c =
          lib.cost(n.opcode, n.bitwidth,
                   has_constant_shift_amount(g, node), data_fanin(g, node));

      // Earliest cycle & in-cycle start from in-block predecessors; values
      // from other blocks, constants and ports are register/wire outputs
      // available at cycle 0, time 0.
      int cycle = 0;
      double start_ns = 0.0;
      for (int p : preds[static_cast<std::size_t>(node)]) {
        const auto it = avail.find(p);
        if (it == avail.end()) continue;  // const/port/unscheduled
        const auto bit = block_of_node.find(p);
        if (bit == block_of_node.end() || bit->second != bb.id) continue;
        if (it->second.cycle > cycle) {
          cycle = it->second.cycle;
          start_ns = it->second.ns;
        } else if (it->second.cycle == cycle) {
          start_ns = std::max(start_ns, it->second.ns);
        }
      }

      OpSchedule os;
      os.node = node;
      if (c.latency == 0) {
        // Combinational: chain if it fits, otherwise start a fresh state.
        if (start_ns > 0.0 && start_ns + c.delay_ns > budget) {
          cycle += 1;
          start_ns = 0.0;
        }
        os.start_cycle = cycle;
        os.end_cycle = cycle;
        os.ready_ns = start_ns + c.delay_ns;
        avail[node] = Avail{cycle, os.ready_ns};
      } else {
        // Multi-cycle: starts at a state boundary, output registered.
        if (start_ns > 0.0) cycle += 1;
        os.start_cycle = cycle;
        os.end_cycle = cycle + c.latency;
        os.ready_ns = 0.0;
        os.registered = true;
        avail[node] = Avail{os.end_cycle, 0.0};
      }
      bs.max_chain_ns = std::max(
          bs.max_chain_ns, c.latency == 0 ? os.ready_ns : c.delay_ns);
      bs.cycles = std::max(bs.cycles, os.end_cycle + 1);
      block_of_node[node] = bb.id;
      bs.ops.push_back(os);
    }
    for (const OpSchedule& os : bs.ops) sched_of_node[os.node] = nullptr;
    ps.blocks.push_back(std::move(bs));
  }

  // Index schedules for the register pass.
  for (auto& bs : ps.blocks) {
    for (auto& os : bs.ops) sched_of_node[os.node] = &os;
  }

  // Pipeline registers: a combinational value crossing a state boundary
  // (same-block consumer in a later cycle) or a block boundary is stored
  // once in a bitwidth-wide register.
  std::vector<bool> needs_reg(static_cast<std::size_t>(g.num_nodes()), false);
  for (const IrEdge& e : g.edges()) {
    if (e.type != EdgeType::kData) continue;
    const auto ps_it = sched_of_node.find(e.src);
    if (ps_it == sched_of_node.end() || ps_it->second == nullptr) continue;
    if (ps_it->second->registered) continue;  // multi-cycle output reg exists
    const auto src_block = block_of_node.find(e.src);
    const auto dst_block = block_of_node.find(e.dst);
    const bool cross_block = dst_block == block_of_node.end() ||
                             dst_block->second != src_block->second;
    if (cross_block) {
      needs_reg[static_cast<std::size_t>(e.src)] = true;
      continue;
    }
    const auto pd = sched_of_node.find(e.dst);
    if (pd != sched_of_node.end() && pd->second != nullptr &&
        pd->second->start_cycle > ps_it->second->end_cycle) {
      needs_reg[static_cast<std::size_t>(e.src)] = true;
    }
  }
  for (auto& bs : ps.blocks) {
    for (auto& os : bs.ops) {
      if (needs_reg[static_cast<std::size_t>(os.node)]) {
        os.registered = true;
        bs.register_ff += lib.register_ff(g.node(os.node).bitwidth);
      }
    }
  }

  for (std::size_t i = 0; i < ps.blocks.size(); ++i) {
    const BlockSchedule& bs = ps.blocks[i];
    ps.total_states += bs.cycles;
    ps.total_register_ff += bs.register_ff;
    ps.max_chain_ns = std::max(ps.max_chain_ns, bs.max_chain_ns);
    ps.latency_cycles +=
        prog.blocks[i].exec_count * static_cast<double>(bs.cycles);
  }
  return ps;
}

}  // namespace gnnhls
