#include <sstream>

#include <gtest/gtest.h>

#include "dataset/serialize.h"
#include "graph/dot_export.h"

namespace gnnhls {
namespace {

std::vector<Sample> tiny_dataset(GraphKind kind) {
  SyntheticDatasetConfig cfg;
  cfg.kind = kind;
  cfg.num_graphs = 6;
  cfg.seed = 5150;
  return build_synthetic_dataset(cfg);
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  const auto samples = tiny_dataset(GraphKind::kCdfg);
  std::stringstream buffer;
  write_benchmark(buffer, samples);
  const auto records = read_benchmark(buffer);
  ASSERT_EQ(records.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const IrGraph& a = samples[i].graph();
    const IrGraph& b = records[i].graph;
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    EXPECT_EQ(a.kind(), b.kind());
    EXPECT_EQ(records[i].origin, samples[i].origin);
    for (int v = 0; v < a.num_nodes(); ++v) {
      EXPECT_EQ(a.node(v).opcode, b.node(v).opcode);
      EXPECT_EQ(a.node(v).bitwidth, b.node(v).bitwidth);
      EXPECT_EQ(a.node(v).cluster_group, b.node(v).cluster_group);
      EXPECT_EQ(a.node(v).is_start_of_path, b.node(v).is_start_of_path);
      EXPECT_EQ(a.node(v).resource.uses_dsp, b.node(v).resource.uses_dsp);
      EXPECT_FLOAT_EQ(a.node(v).resource.lut, b.node(v).resource.lut);
    }
    for (int e = 0; e < a.num_edges(); ++e) {
      EXPECT_EQ(a.edge(e).src, b.edge(e).src);
      EXPECT_EQ(a.edge(e).dst, b.edge(e).dst);
      EXPECT_EQ(a.edge(e).type, b.edge(e).type);
      EXPECT_EQ(a.edge(e).is_back_edge, b.edge(e).is_back_edge);
    }
    EXPECT_DOUBLE_EQ(samples[i].truth.lut, records[i].truth.lut);
    EXPECT_DOUBLE_EQ(samples[i].truth.cp_ns, records[i].truth.cp_ns);
    EXPECT_DOUBLE_EQ(samples[i].hls_report.ff, records[i].hls_report.ff);
    // Tensors rebuilt identically.
    EXPECT_EQ(samples[i].tensors.src, records[i].tensors.src);
    EXPECT_EQ(samples[i].tensors.relation_edges,
              records[i].tensors.relation_edges);
  }
}

TEST(SerializeTest, DfgRoundTrip) {
  const auto samples = tiny_dataset(GraphKind::kDfg);
  std::stringstream buffer;
  write_benchmark(buffer, samples);
  const auto records = read_benchmark(buffer);
  ASSERT_EQ(records.size(), samples.size());
  EXPECT_EQ(records[0].graph.kind(), GraphKind::kDfg);
  EXPECT_EQ(records[0].graph.count_back_edges(), 0);
}

TEST(SerializeTest, RejectsBadHeader) {
  std::stringstream buffer("not-a-benchmark\n");
  EXPECT_THROW(read_benchmark(buffer), std::invalid_argument);
}

TEST(SerializeTest, RejectsTruncatedRecord) {
  const auto samples = tiny_dataset(GraphKind::kDfg);
  std::stringstream buffer;
  write_benchmark(buffer, samples);
  std::string content = buffer.str();
  content.resize(content.size() / 2);  // cut mid-record
  std::stringstream cut(content);
  EXPECT_THROW(read_benchmark(cut), std::invalid_argument);
}

TEST(SerializeTest, RejectsCorruptOpcode) {
  std::stringstream buffer;
  buffer << "gnnhls-benchmark v1\n"
         << "graph g dfg 1 0\n"
         << "qor 0 1 1 5\n"
         << "report 0 1 1 5\n"
         << "node 0 9999 32 0 0 0 0 0 0 0 0 0\n"
         << "end\n";
  EXPECT_THROW(read_benchmark(buffer), std::invalid_argument);
}

// ----- typed negative paths: corrupted/truncated/hostile buffers must
// surface as ParseStatus values, never abort, so the serving wire path can
// answer with a reject frame. -----

/// One well-formed single-record payload to corrupt line-by-line.
std::string good_payload() {
  const auto samples = tiny_dataset(GraphKind::kDfg);
  return encode_sample_payload(samples[0]);
}

ParseStatus status_of(const std::string& text) {
  std::istringstream is(text);
  const ParseResult r = try_read_benchmark(is);
  // On failure no partial records may leak out.
  if (!r.ok()) EXPECT_TRUE(r.records.empty());
  return r.status;
}

TEST(SerializeNegativeTest, TypedStatusPerCorruption) {
  EXPECT_EQ(status_of(""), ParseStatus::kBadHeader);
  EXPECT_EQ(status_of("gnnhls-benchmark v2\n"), ParseStatus::kBadHeader);
  EXPECT_EQ(status_of("gnnhls-benchmark v1\nnonsense line\n"),
            ParseStatus::kBadGraphHeader);
  EXPECT_EQ(status_of("gnnhls-benchmark v1\ngraph g pdg 1 0\n"),
            ParseStatus::kBadGraphHeader);  // unknown graph kind
  EXPECT_EQ(status_of("gnnhls-benchmark v1\ngraph g dfg -3 0\n"),
            ParseStatus::kBadGraphHeader);  // negative dimensions
  EXPECT_EQ(status_of("gnnhls-benchmark v1\ngraph g dfg 1 0\nqor a b c d\n"),
            ParseStatus::kBadQor);
  EXPECT_EQ(status_of("gnnhls-benchmark v1\ngraph g dfg 1 0\n"
                      "qor 0 1 1 5\nreport 0 1 1 5\n"
                      "node 99 0 32 0 0 0 0 0 0 0 0 0\nend\n"),
            ParseStatus::kBadNode);  // node type out of range
  EXPECT_EQ(status_of("gnnhls-benchmark v1\ngraph g dfg 2 1\n"
                      "qor 0 1 1 5\nreport 0 1 1 5\n"
                      "node 0 0 32 0 0 0 0 0 0 0 0 0\n"
                      "node 0 0 32 0 0 0 0 0 0 0 0 0\n"
                      "edge 0 7 0 0\nend\n"),
            ParseStatus::kBadEdge);  // edge endpoint out of range
  EXPECT_EQ(status_of("gnnhls-benchmark v1\ngraph g dfg 2 1\n"
                      "qor 0 1 1 5\nreport 0 1 1 5\n"
                      "node 0 0 32 0 0 0 0 0 0 0 0 0\n"
                      "node 0 0 32 0 0 0 0 0 0 0 0 0\n"
                      "edge 0 1 9 0\nend\n"),
            ParseStatus::kBadEdge);  // edge type out of range
  EXPECT_EQ(status_of("gnnhls-benchmark v1\ngraph g dfg 1 0\nqor 0 1 1 5\n"),
            ParseStatus::kTruncated);  // ends before report line
}

TEST(SerializeNegativeTest, TruncationAtEveryLineIsTyped) {
  // Cut a valid payload after every line: every prefix must fail with a
  // typed status (never succeed, never abort). The header-only prefix is
  // the empty benchmark — valid with zero records.
  const std::string payload = good_payload();
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] == '\n') {
      lines.push_back(payload.substr(start, i - start + 1));
      start = i + 1;
    }
  }
  ASSERT_GT(lines.size(), 4U);
  std::string prefix;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    prefix += lines[i];
    std::istringstream is(prefix);
    const ParseResult r = try_read_benchmark(is);
    if (i == 0) {
      EXPECT_TRUE(r.ok());  // just the magic line: empty benchmark
      EXPECT_TRUE(r.records.empty());
    } else {
      EXPECT_FALSE(r.ok()) << "prefix of " << i + 1 << " lines";
      EXPECT_TRUE(r.records.empty());
      EXPECT_FALSE(r.message.empty());
    }
  }
}

TEST(SerializeNegativeTest, StructuralCycleIsTyped) {
  // Line-level syntax fine, whole-graph invariant broken: a forward-edge
  // cycle must surface as kBadStructure (finalize re-typed, not a crash).
  const std::string cyclic =
      "gnnhls-benchmark v1\n"
      "graph g dfg 2 2\n"
      "qor 0 1 1 5\nreport 0 1 1 5\n"
      "node 0 0 32 0 0 0 0 0 0 0 0 0\n"
      "node 0 0 32 0 0 0 0 0 0 0 0 0\n"
      "edge 0 1 0 0\n"
      "edge 1 0 0 0\n"
      "end\n";
  EXPECT_EQ(status_of(cyclic), ParseStatus::kBadStructure);
  // The throwing API reports the same typed status.
  std::istringstream is(cyclic);
  try {
    read_benchmark(is);
    FAIL() << "expected BenchmarkParseError";
  } catch (const BenchmarkParseError& e) {
    EXPECT_EQ(e.status(), ParseStatus::kBadStructure);
  }
}

TEST(SerializeNegativeTest, DecodeSamplePayloadRoundTripAndRejects) {
  const auto samples = tiny_dataset(GraphKind::kCdfg);
  const std::string payload = encode_sample_payload(samples[0]);

  const DecodedSample ok = decode_sample_payload(payload);
  ASSERT_TRUE(ok.ok()) << ok.message;
  ASSERT_NE(ok.sample, nullptr);
  // Decoded sample is inference-ready and re-encodes bit-identically.
  EXPECT_EQ(encode_sample_payload(*ok.sample), payload);
  EXPECT_EQ(ok.sample->tensors.src, samples[0].tensors.src);
  EXPECT_NE(ok.sample->uid, samples[0].uid);  // fresh identity

  const DecodedSample garbage = decode_sample_payload("garbage");
  EXPECT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.sample, nullptr);
  EXPECT_EQ(garbage.status, ParseStatus::kBadHeader);

  // A multi-record stream is a valid benchmark but NOT a valid wire
  // payload (exactly one sample per request frame).
  std::stringstream multi;
  write_benchmark(multi, samples);
  const DecodedSample too_many = decode_sample_payload(multi.str());
  EXPECT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status, ParseStatus::kBadStructure);

  const DecodedSample none = decode_sample_payload("gnnhls-benchmark v1\n");
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.status, ParseStatus::kBadStructure);  // zero records
}

TEST(SerializeNegativeTest, ParseStatusNamesAreStable) {
  EXPECT_EQ(parse_status_name(ParseStatus::kOk), "ok");
  EXPECT_EQ(parse_status_name(ParseStatus::kBadHeader), "bad-header");
  EXPECT_EQ(parse_status_name(ParseStatus::kTruncated), "truncated");
  EXPECT_EQ(parse_status_name(ParseStatus::kBadStructure), "bad-structure");
}

TEST(SerializeTest, FileRoundTrip) {
  const auto samples = tiny_dataset(GraphKind::kCdfg);
  const std::string path = ::testing::TempDir() + "/bench_roundtrip.txt";
  write_benchmark_file(path, samples);
  const auto records = read_benchmark_file(path);
  EXPECT_EQ(records.size(), samples.size());
  EXPECT_THROW(read_benchmark_file(path + ".missing"),
               std::invalid_argument);
}

TEST(DotExportTest, ContainsNodesEdgesAndStyles) {
  const auto samples = tiny_dataset(GraphKind::kCdfg);
  const std::string dot = to_dot(samples[0].graph());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 "), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);  // back edges
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // control edges
}

}  // namespace
}  // namespace gnnhls
