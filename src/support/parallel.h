// Fine-grained data parallelism for tensor kernels and batch assembly.
//
// A ThreadPool keeps its workers parked on a condition variable between
// parallel regions, so a parallel_for over matrix rows costs a wakeup, not a
// thread spawn. Work is split into contiguous index chunks and each chunk is
// computed by exactly one worker with a sequential inner loop, so results
// are bitwise identical to the serial execution regardless of scheduling
// (the library's reproducibility contract, see support/rng.h).
//
// This pool is for *kernel*-level parallelism (matmul tiles, batched graph
// assembly); coarse job-level parallelism across experiments stays with
// core/experiment.h run_parallel.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace gnnhls {

class ThreadPool {
 public:
  /// threads <= 0 selects hardware_concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }
  /// Parked worker threads (num_threads - 1; 0 means parallel_for is inline).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs body(begin, end) over disjoint contiguous chunks of [begin, end).
  /// The calling thread participates; returns when every chunk completed.
  /// Falls back to a single inline call when the range is smaller than
  /// min_chunk or the pool has no workers. Exceptions from body propagate to
  /// the caller (first one wins).
  void parallel_for(int begin, int end, int min_chunk,
                    const std::function<void(int, int)>& body);

  /// Process-wide pool, lazily constructed with hardware_concurrency.
  /// Lock-free after first construction (hot kernels call this per matmul).
  static ThreadPool& global();
  /// Rebuilds the global pool with `threads` workers (bench --threads knob).
  /// Must not race with kernels running on the old pool.
  static void set_global_threads(int threads);

 private:
  struct Region;  // one parallel_for invocation

  void worker_loop();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::shared_ptr<Region> region_;  // active region, guarded by mu_
  std::uint64_t next_region_id_ = 0;
  bool shutdown_ = false;
};

/// Convenience wrapper over the global pool. Template so the common serial
/// fallback (small range or single-thread pool) invokes the lambda directly
/// without ever materializing a std::function — kernels call this per
/// matmul, so the fallback must not allocate.
template <typename Body>
inline void parallel_for(int begin, int end, int min_chunk, Body&& body) {
  ThreadPool& pool = ThreadPool::global();
  if (pool.num_workers() == 0 || end - begin <= std::max(min_chunk, 1)) {
    if (begin < end) body(begin, end);
    return;
  }
  pool.parallel_for(begin, end, min_chunk,
                    std::function<void(int, int)>(std::forward<Body>(body)));
}

/// Runs body(shard) for every shard in [0, count) on the global pool, one
/// index per invocation (coarse-grained data parallelism: each shard is a
/// whole unit of work — e.g. one mini-batch tape — not a slice of an index
/// range). Which thread runs which shard is unspecified; callers that need
/// reproducible results must make each shard's computation independent and
/// reduce shard outputs in a fixed order afterwards (see Adam::step_merged).
/// With count <= 1 or a single-thread pool the shards run inline, serially,
/// in index order.
template <typename Body>
inline void parallel_shards(int count, Body&& body) {
  parallel_for(0, count, 1, [&body](int lo, int hi) {
    for (int s = lo; s < hi; ++s) body(s);
  });
}

/// Splits [0, n) into contiguous ranges of roughly equal cumulative cost,
/// where cum[i] is the total cost of indices [0, i) (cum has size n+1,
/// cum[0] == 0, non-decreasing). Returns range boundaries b_0=0 < b_1 < ...
/// < b_k=n such that every range carries at least min_cost (except possibly
/// the last) and k is at most max_ranges. The boundaries depend only on the
/// cost profile and the requested fan-out — never on scheduling — so a
/// kernel that gives each range to one task and accumulates within the
/// range in index order is deterministic at any pool width.
///
/// This is the load balancer for destination-partitioned segment kernels:
/// equal-*row* chunks starve under power-law in-degree (one hub node can
/// own most of the edges), equal-*cost* chunks do not.
std::vector<int> balanced_boundaries(const std::vector<int>& cum,
                                     int max_ranges, int min_cost);

/// Runs body(lo, hi) for every consecutive boundary pair of `bounds` (as
/// produced by balanced_boundaries) on the global pool, one range per task.
/// Ranges are disjoint and contiguous, so a body that owns all writes for
/// its range needs no synchronization.
template <typename Body>
inline void parallel_over_ranges(const std::vector<int>& bounds, Body&& body) {
  const int ranges = static_cast<int>(bounds.size()) - 1;
  parallel_shards(ranges, [&bounds, &body](int r) {
    body(bounds[static_cast<std::size_t>(r)],
         bounds[static_cast<std::size_t>(r) + 1]);
  });
}

}  // namespace gnnhls
