// Design-space exploration bench: ranking quality and exploration
// throughput of the dse/ engine (the workload the paper's fast QoR
// prediction exists to serve).
//
// Trains LUT + FF predictors on a synthetic CDFG corpus, builds a gemm
// design space of >= --dse-points candidates (unroll x bitwidth x clock
// knobs) and reports:
//
//   * ranking quality — Spearman rank correlation of predicted vs
//     ground-truth QoR over the exhaustive sweep (the fidelity that decides
//     whether the predictor can drive pruning);
//   * successive halving vs exhaustive — ground-truth HLS invocations
//     (budget <= 25% of the sweep via --dse-topk), whether the sweep's
//     true top-1 survives the predictor-guided pruning, and whether the
//     surviving front matches the exhaustive front;
//   * exploration throughput — candidates/sec of a full successive-halving
//     run, sweeping --threads (lowering + synthesis shards on the kernel
//     pool) x --max-batch (micro-batch size of the serving-path scorer).
//
// With --active (and optionally --ensemble=K) the bench also runs the
// model-in-the-loop arm: Explorer::active_halving refits the rank-metric
// model on fed-back HLS ground truth mid-pruning, at successive halving's
// EXACT synthesis budget. The arm is gated: equal hls_runs, post-refit
// Spearman matches/beats the static model's, top-1 recovery no worse, and
// the whole active trace bit-identical across scorer paths and thread
// counts.
//
// Hard gates (exit 1): scoring through the ServingBatcher must be
// bit-identical to direct predict_many (the serving contract), and
// successive halving must respect its ground-truth budget. The
// data-dependent quality checks (Spearman level, top-1 recovery, front
// agreement) are report-only here — examples/design_space_exploration.cpp
// gates front agreement at its fixed seed as the CI quality smoke.
//
// --smoke shrinks everything to a CI-sized run (also used by the Release
// bench-smoke job).
#include <cstring>
#include <memory>

#include "bench_common.h"
#include "core/ensemble.h"
#include "dse/explorer.h"

namespace gnnhls::bench {
namespace {

struct TrainedModels {
  QorPredictor lut;
  QorPredictor ff;
};

TrainedModels train_models(const BenchConfig& cfg,
                           const std::vector<Sample>& corpus) {
  const SplitIndices split =
      split_80_10_10(static_cast<int>(corpus.size()), cfg.seed);
  ModelConfig mc = model_config(cfg);
  mc.kind = GnnKind::kRgcn;
  TrainConfig tc = train_config(cfg);
  TrainedModels models{QorPredictor(Approach::kOffTheShelf, mc, tc),
                       QorPredictor(Approach::kOffTheShelf, mc, tc)};
  Timer t;
  const double lut_val = models.lut.fit(corpus, split, Metric::kLut);
  const double ff_val = models.ff.fit(corpus, split, Metric::kFf);
  std::cout << "  trained LUT (val MAPE " << TextTable::pct(lut_val)
            << ") + FF (val MAPE " << TextTable::pct(ff_val) << ") in "
            << TextTable::num(t.seconds(), 1) << "s\n";
  return models;
}

double true_of(const DseCandidate& c, Metric m) {
  return metric_of(c.sample.truth, m);
}

double predicted_of(const DseCandidate& c, Metric m) {
  return c.predicted[static_cast<std::size_t>(m)];
}

double rank_quality(const DseResult& exhaustive, Metric m) {
  std::vector<double> predicted, truth;
  for (const DseCandidate& c : exhaustive.candidates) {
    predicted.push_back(predicted_of(c, m));
    truth.push_back(true_of(c, m));
  }
  return spearman_rank_correlation(predicted, truth);
}

bool same_exploration(const DseResult& a, const DseResult& b) {
  if (a.candidates.size() != b.candidates.size()) return false;
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    if (a.candidates[i].predicted != b.candidates[i].predicted) return false;
    if (a.candidates[i].uncertainty != b.candidates[i].uncertainty) {
      return false;
    }
    if (a.candidates[i].synthesized != b.candidates[i].synthesized) {
      return false;
    }
  }
  // The active-loop trace must agree too (defaults for static runs).
  return a.front == b.front && a.predicted_front == b.predicted_front &&
         a.best == b.best && a.survivors_per_round == b.survivors_per_round &&
         a.refits == b.refits && a.fed_back == b.fed_back;
}

int run(int argc, const char* const* argv) {
  // --smoke (CI scale) is bench_dse-specific: strip it before the shared
  // parser so it is not reported as an unknown flag.
  std::vector<const char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const auto has_flag = [&args](const std::string& name) {
    for (const char* a : args) {
      if (name == a) return true;  // "--name value" form
      if (std::strncmp(a, name.c_str(), name.size()) == 0 &&
          a[name.size()] == '=') {
        return true;  // "--name=value" form
      }
    }
    return false;
  };
  BenchConfig cfg =
      parse_bench_config(static_cast<int>(args.size()), args.data());
  if (smoke) {
    // A preset, not an override: every explicit flag wins.
    const auto preset = [&has_flag](const char* flag, int& field, int value) {
      if (!has_flag(flag)) field = value;
    };
    preset("--cdfg-graphs", cfg.cdfg_graphs, 48);
    preset("--hidden", cfg.hidden, 16);
    preset("--layers", cfg.layers, 2);
    preset("--epochs", cfg.epochs, 6);
    preset("--batch-size", cfg.batch_size, 8);
    preset("--dse-points", cfg.dse_points, 16);
    preset("--threads", cfg.threads, 2);
  }
  print_header("DSE: model-in-the-loop design-space exploration", cfg);

  std::cout << "\n-- corpus + models --\n";
  const std::vector<Sample> corpus = build_cdfg(cfg);
  print_dataset_line("synthetic CDFG", corpus);
  const TrainedModels models = train_models(cfg, corpus);
  const PredictorScorer direct(
      {{Metric::kLut, &models.lut}, {Metric::kFf, &models.ff}});

  const DesignSpace space =
      make_kernel_design_space("gemm", grid_with_at_least(cfg.dse_points));
  const int n = static_cast<int>(space.size());
  // --dse-topk=0 keeps the default budget (and its hard gate below); only
  // a positive override hands budget responsibility to the user.
  const bool explicit_topk = cfg.dse_topk > 0;
  DseConfig dse;
  dse.front_metrics = {Metric::kLut, Metric::kFf};
  dse.rank_metric = Metric::kLut;
  dse.top_k = explicit_topk ? cfg.dse_topk : std::max(1, n / 4);
  dse.arena = cfg.arena;
  const Explorer explorer(space, direct, dse);
  std::cout << "\n-- design space --\n  gemm, " << n
            << " candidates (unroll x bitwidth x clock x uncertainty), "
               "ground-truth budget top-k="
            << dse.top_k << "\n";

  // ----- ranking quality: exhaustive ground truth vs predictions -----
  Timer exh_timer;
  const DseResult exh = explorer.exhaustive();
  const double exh_s = exh_timer.seconds();
  const DseResult sh = explorer.successive_halving();
  std::cout << "\n-- ranking quality (exhaustive sweep, " << exh.hls_runs
            << " HLS runs in " << TextTable::num(exh_s, 2) << "s) --\n";
  TextTable quality({"metric", "Spearman rho (pred vs truth)"});
  for (Metric m : dse.front_metrics) {
    quality.add_row({metric_name(m), TextTable::num(rank_quality(exh, m), 3)});
  }
  std::cout << quality.to_string();

  // ----- successive halving vs exhaustive -----
  std::string trace;
  for (std::size_t i = 0; i < sh.survivors_per_round.size(); ++i) {
    trace += (i ? " -> " : "") + std::to_string(sh.survivors_per_round[i]);
  }
  std::cout << "\n-- successive halving (survivors " << trace << ") --\n  "
            << sh.hls_runs << "/" << exh.hls_runs
            << " ground-truth HLS runs, true front size "
            << exh.front.size() << ", recovered front size " << sh.front.size()
            << "\n";

  ShapeChecks checks;
  // With the default budget (--dse-topk=0 -> points/4) this is a hard
  // structural invariant; an explicit --dse-topk is the user's choice and
  // the check turns report-only.
  const bool budget_ok = sh.hls_runs * 4 <= exh.hls_runs;
  checks.check("halving HLS budget <= 25% of exhaustive", budget_ok);
  checks.check("halving recovers the exhaustive true top-1",
               sh.best == exh.best);
  checks.check("halving front == exhaustive front", sh.front == exh.front);
  checks.check("Spearman(LUT) >= 0.7 at this scale",
               rank_quality(exh, Metric::kLut) >= 0.7);

  // ----- serving-path bit-identity (hard gate) -----
  SchedulerConfig sc;
  sc.max_batch = cfg.max_batch;
  sc.batch_window_us = cfg.batch_window_us;
  sc.arena = cfg.arena;
  const ServingScorer serving(
      {{Metric::kLut, &models.lut}, {Metric::kFf, &models.ff}}, sc);
  const Explorer served_explorer(space, serving, dse);
  const bool serving_identical =
      same_exploration(sh, served_explorer.successive_halving());
  checks.check("shared-scheduler scoring bit-identical to predict_many",
               serving_identical);

  BenchJsonLog json_log;
  for (Metric m : dse.front_metrics) {
    json_log.add(std::string("spearman ") + metric_name(m),
                 rank_quality(exh, m), "rho");
  }

  // ----- model-in-the-loop active halving (--active) -----
  bool active_ok = true;  // stays true when the arm is off
  if (cfg.dse_active) {
    const SplitIndices split =
        split_80_10_10(static_cast<int>(corpus.size()), cfg.seed);
    ModelConfig amc = model_config(cfg);
    amc.kind = GnnKind::kRgcn;
    const TrainConfig atc = train_config(cfg);
    DseConfig active_cfg = dse;
    active_cfg.active.feedback_rounds = 1;
    if (cfg.dse_ensemble > 1) {
      active_cfg.active.acquisition = Acquisition::kUncertaintyBonus;
    }
    std::cout << "\n-- active halving (--active, rank-model ensemble K="
              << cfg.dse_ensemble << ", acquisition "
              << (cfg.dse_ensemble > 1 ? "uncertainty-bonus"
                                       : "predicted-rank")
              << ") --\n";

    struct ActiveRun {
      DseResult result;
      double rho = 0.0;   // POST-refit Spearman over the full space
      double wall = 0.0;  // active_halving only (fit excluded)
    };
    // Each run fits its own rank model — refitting mutates it in place —
    // bitwise reproducing the same starting checkpoint at the fixed seed.
    const auto run_active = [&](bool use_serving) {
      QorEnsemble model(Approach::kOffTheShelf, amc, atc, cfg.dse_ensemble);
      model.fit(corpus, split, Metric::kLut, FitOptions{});
      ModelTable table;
      table.add(Metric::kLut, &model);
      table.add(Metric::kFf, &models.ff);
      std::unique_ptr<Scorer> scorer;
      if (use_serving) {
        scorer = std::make_unique<ServingScorer>(std::move(table), sc);
      } else {
        scorer = std::make_unique<PredictorScorer>(std::move(table));
      }
      const Explorer ex(space, *scorer, active_cfg);
      ActiveRun run;
      Timer t;
      run.result = ex.active_halving(model);
      run.wall = t.seconds();
      // Post-refit ranking quality, judged on the exhaustive sweep's
      // ground truth over the WHOLE space (not just survivors).
      std::vector<const Sample*> ptrs;
      std::vector<double> truth;
      for (const DseCandidate& c : exh.candidates) {
        ptrs.push_back(&c.sample);
        truth.push_back(true_of(c, Metric::kLut));
      }
      run.rho = spearman_rank_correlation(model.predict_many(ptrs), truth);
      return run;
    };

    const ActiveRun active = run_active(false);
    const ActiveRun via_sched = run_active(true);
    ThreadPool::set_global_threads(cfg.threads);
    const ActiveRun wide = run_active(false);
    ThreadPool::set_global_threads(1);

    const DseResult& act = active.result;
    std::string atrace;
    for (std::size_t i = 0; i < act.survivors_per_round.size(); ++i) {
      atrace += (i ? " -> " : "") + std::to_string(act.survivors_per_round[i]);
    }
    int fed = 0;
    for (const std::vector<int>& round : act.fed_back) {
      fed += static_cast<int>(round.size());
    }
    std::cout << "  survivors " << atrace << ", " << act.refits
              << " refit(s) on " << fed << " fed-back candidate(s), "
              << act.hls_runs << " HLS runs in "
              << TextTable::num(active.wall, 2) << "s\n";
    const double static_rho = rank_quality(exh, Metric::kLut);
    TextTable duel({"strategy", "Spearman rho (LUT)", "true top-1",
                    "HLS runs"});
    duel.add_row({"static halving", TextTable::num(static_rho, 3),
                  sh.best == exh.best ? "recovered" : "missed",
                  std::to_string(sh.hls_runs)});
    duel.add_row({"active halving", TextTable::num(active.rho, 3),
                  act.best == exh.best ? "recovered" : "missed",
                  std::to_string(act.hls_runs)});
    std::cout << duel.to_string();

    // The active arm's hard gates: budget parity, no quality regression,
    // and the determinism contract extended through the feedback loop.
    const bool equal_budget = act.hls_runs == sh.hls_runs;
    const bool rho_ok = active.rho + 1e-9 >= static_rho;
    const bool top1_ok = sh.best != exh.best || act.best == exh.best;
    const bool paths_ok = same_exploration(act, via_sched.result) &&
                          active.rho == via_sched.rho;
    const bool widths_ok =
        same_exploration(act, wide.result) && active.rho == wide.rho;
    checks.check("active spends exactly the static halving budget",
                 equal_budget);
    checks.check("active Spearman(LUT) matches/beats static after refit",
                 rho_ok);
    checks.check("active top-1 recovery no worse than static", top1_ok);
    checks.check("active trace bit-identical across scorer paths", paths_ok);
    checks.check("active trace bit-identical across thread counts",
                 widths_ok);
    active_ok = equal_budget && rho_ok && top1_ok && paths_ok && widths_ok;

    json_log.add("active spearman LUT", active.rho, "rho");
    json_log.add("active halving",
                 static_cast<double>(n) / active.wall, "cand/s");
  }

  // ----- exploration throughput: --threads x --max-batch -----
  std::cout << "\n-- exploration throughput (full successive-halving runs, "
               "candidates/sec) --\n";
  std::vector<int> thread_counts = {1};
  if (cfg.threads > 1) thread_counts.push_back(cfg.threads);
  std::vector<int> batch_sizes = {1};
  if (cfg.max_batch > 1) batch_sizes.push_back(cfg.max_batch);
  TextTable throughput({"threads", "max-batch", "wall (s)", "cand/s"});
  bool sweep_identical = true;
  for (int threads : thread_counts) {
    ThreadPool::set_global_threads(threads);
    for (int max_batch : batch_sizes) {
      SchedulerConfig row_sc;
      row_sc.max_batch = max_batch;
      row_sc.batch_window_us = cfg.batch_window_us;
      row_sc.arena = cfg.arena;
      const ServingScorer row_scorer(
          {{Metric::kLut, &models.lut}, {Metric::kFf, &models.ff}}, row_sc);
      const Explorer row_explorer(space, row_scorer, dse);
      Timer t;
      const DseResult r = row_explorer.successive_halving();
      const double wall = t.seconds();
      // Every row must reproduce the baseline exploration bit-for-bit —
      // the sweep varies exactly the knobs (pool width, micro-batch size)
      // the determinism contract says are value-neutral.
      if (!same_exploration(sh, r)) sweep_identical = false;
      throughput.add_row(
          {std::to_string(threads), std::to_string(max_batch),
           TextTable::num(wall, 3),
           TextTable::num(static_cast<double>(n) / wall, 1)});
      json_log.add("halving threads=" + std::to_string(threads) +
                       " max-batch=" + std::to_string(max_batch),
                   static_cast<double>(n) / wall, "cand/s");
    }
  }
  ThreadPool::set_global_threads(1);  // bench harness convention
  checks.check("sweep rows bit-identical across threads x max-batch",
               sweep_identical);
  std::cout << throughput.to_string() << "\n";
  write_bench_json(cfg, json_log, "dse");

  checks.summary();
  const bool hard_ok = serving_identical && sweep_identical && active_ok &&
                       (explicit_topk || budget_ok);
  if (!hard_ok) {
    std::cout << "FAIL: a hard DSE invariant (serving/sweep/active "
                 "bit-identity, an active-arm quality gate, or the default "
                 "ground-truth budget) was violated\n";
    return 1;
  }
  std::cout << "hard invariants hold: served scoring bit-identical, "
               "ground-truth budget respected"
            << (cfg.dse_active
                    ? ", active arm at parity budget with no quality "
                      "regression.\n"
                    : ".\n");
  return 0;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
