#include "core/predictor.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "gnn/graph_batch.h"
#include "support/arena.h"
#include "support/parallel.h"
#include "train/feature_cache.h"

namespace gnnhls {

namespace {

/// Classifier training hooks shared by QorPredictor -I and
/// NodeTypePredictor: BCE over the three binary type tasks.
Trainer::Hooks classifier_hooks(const NodeClassifier& classifier) {
  Trainer::Hooks hooks;
  hooks.forward = [&classifier](Tape& tape, const GraphTensors& gt,
                                const Matrix& feats, Rng& rng) {
    return classifier.forward(tape, gt, feats, rng, true);
  };
  hooks.loss = [](Tape& tape, const Var& logits, const Matrix& labels) {
    return tape.bce_with_logits_loss(logits, labels);
  };
  return hooks;
}

/// Regressor training hooks: model forward + batch-mean MSE.
Trainer::Hooks regressor_hooks(const GraphRegressor& regressor) {
  Trainer::Hooks hooks;
  hooks.forward = [&regressor](Tape& tape, const GraphTensors& gt,
                               const Matrix& feats, Rng& rng) {
    return regressor.forward(tape, gt, feats, rng, true);
  };
  hooks.loss = [](Tape& tape, const Var& pred, const Matrix& target) {
    // One prediction row per member graph; MSE averages over the batch.
    return tape.mse_loss(pred, target);
  };
  return hooks;
}

/// Classifier data plan: off-the-shelf features, node-type label rows —
/// both served from the FeatureCache.
BatchPlan classifier_plan(const std::vector<Sample>& samples,
                          const std::vector<int>& train_idx,
                          const TrainConfig& tc) {
  const std::uint64_t order_seed = tc.seed * 31 + 7;
  return BatchPlan::build(
      samples, train_idx, tc.batch_size,
      [](const Sample& s) -> const Matrix& {
        return FeatureCache::global().features(s, Approach::kOffTheShelf);
      },
      [](const Sample& s) {
        return FeatureCache::global().node_type_labels(s);
      },
      Rng(order_seed),
      // Cores depend only on (membership, off-the-shelf features): the -I
      // hierarchy's classifier refit and the standalone NodeTypePredictor
      // share one assembly per (seed, split).
      BatchPlan::share_key("train/cls", order_seed, tc.batch_size, samples,
                           train_idx));
}

}  // namespace

std::vector<Matrix> snapshot_parameters(const Module& m) {
  std::vector<Matrix> snap;
  snap.reserve(m.parameters().size());
  for (const Parameter* p : m.parameters()) snap.push_back(p->value());
  return snap;
}

void restore_parameters(Module& m, const std::vector<Matrix>& snap) {
  GNNHLS_CHECK_EQ(snap.size(), m.parameters().size(),
                  "parameter snapshot shape mismatch");
  for (std::size_t i = 0; i < snap.size(); ++i) {
    m.parameters()[i]->mutable_value() = snap[i];
  }
}

QorPredictor::QorPredictor(Approach approach, ModelConfig model_cfg,
                           TrainConfig train_cfg, InfusedInference infused)
    : approach_(approach),
      model_cfg_(model_cfg),
      train_cfg_(train_cfg),
      infused_(infused) {}

bool QorPredictor::pure_inference_features() const {
  return approach_ != Approach::kKnowledgeInfused ||
         infused_ == InfusedInference::kOracle;
}

Matrix QorPredictor::infused_features(const Sample& s) const {
  // Hierarchical inference: self-inferred resource types replace labels.
  // Only the classifier-independent base features are cacheable.
  GNNHLS_CHECK(classifier_ != nullptr, "predict before fit");
  const Matrix& base =
      FeatureCache::global().features(s, Approach::kOffTheShelf);
  const auto inferred = classifier_->infer_types(s.tensors, base);
  return InputFeatureBuilder::build(s.graph(), approach_, &inferred);
}

void QorPredictor::fit_classifier(const std::vector<Sample>& samples,
                                  const std::vector<int>& train_idx,
                                  std::uint64_t seed) {
  Rng init_rng(seed * 7919 + 13);
  classifier_ = std::make_unique<NodeClassifier>(
      model_cfg_, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf),
      init_rng);
  TrainConfig tc = train_cfg_;
  tc.seed = seed;
  BatchPlan plan = classifier_plan(samples, train_idx, tc);
  Trainer trainer(*classifier_, tc, classifier_hooks(*classifier_),
                  seed * 17 + 3);
  trainer.fit(plan, nullptr);  // -I keeps the last classifier epoch
}

FitReport QorPredictor::train_regressor(BatchPlan& plan, Trainer& trainer,
                                        const FitOptions& opts) {
  FitReport report;
  std::vector<Matrix> best_params;
  AdamState best_opt;
  const bool select_best =
      opts.validation == FitOptions::Validation::kBestEpoch;
  const FitReport run = trainer.fit(plan, opts, [&](int epoch) {
    // Validation model selection. NOTE: -I validates through the full
    // hierarchical path (classifier bits), matching deployment.
    const double val = evaluate_mape(corpus_, split_.val);
    report.val_curve.push_back(val);
    if (report.best_epoch < 0 || val < report.best_val) {
      report.best_val = val;
      report.best_epoch = epoch;
      if (select_best) {
        // Snapshot both halves of the checkpoint: a later warm start must
        // resume from the SELECTED model, weights and moments together.
        best_params = snapshot_parameters(*regressor_);
        best_opt = trainer.export_optimizer_state();
      }
    }
  });
  report.epochs_run = run.epochs_run;
  report.steps = run.steps;
  report.warm_started = run.warm_started;
  if (select_best && !best_params.empty()) {
    restore_parameters(*regressor_, best_params);
    adam_state_ = std::move(best_opt);
  } else {
    adam_state_ = trainer.export_optimizer_state();
  }
  return report;
}

FitReport QorPredictor::fit(const std::vector<Sample>& samples,
                            const SplitIndices& split, Metric metric,
                            const FitOptions& opts) {
  metric_ = metric;
  GNNHLS_CHECK(!split.train.empty() && !split.val.empty(),
               "fit: empty train/val split");
  tune_malloc_for_tensor_workloads();  // epochs of tape churn ahead
  const std::uint64_t seed = opts.seed != 0 ? opts.seed : train_cfg_.seed;
  const bool warm = opts.warm_start && regressor_ != nullptr;

  if (!warm) {
    if (approach_ == Approach::kKnowledgeInfused &&
        infused_ == InfusedInference::kSelfInferred) {
      fit_classifier(samples, split.train, seed);
    }
    Rng init_rng(seed * 104729 + static_cast<int>(metric));
    regressor_ = std::make_unique<GraphRegressor>(
        model_cfg_, InputFeatureBuilder::feature_dim(approach_), init_rng);
    adam_state_.reset();
  }

  // Retain the corpus and split (Sample copies keep their uids, so cached
  // features and batch cores stay shared) for later refit() segments.
  corpus_ = samples;
  split_ = split;
  fit_seed_ = seed;
  refits_ = 0;
  segments_.clear();

  // -I trains on ground-truth type bits (knowledge infusion), so training
  // features are a pure function of (sample, approach) for every approach
  // and come from the FeatureCache. Plan cores depend only on (seed, split,
  // approach) — never on the fitted metric, which lives in the labels — so
  // per-metric refits over the same split share one union assembly through
  // the BatchCoreCache.
  const std::uint64_t order_seed = seed * 31 + 1;
  const std::string key = BatchPlan::share_key(
      "train/reg/a" + std::to_string(static_cast<int>(approach_)), order_seed,
      train_cfg_.batch_size, corpus_, split.train);
  BatchPlan plan = BatchPlan::build(
      corpus_, split.train, train_cfg_.batch_size,
      [this](const Sample& s) -> const Matrix& {
        return FeatureCache::global().features(s, approach_);
      },
      [this](const Sample& s) {
        return Matrix(1, 1,
                      encode_target(metric_of(s.truth, metric_), metric_));
      },
      Rng(order_seed), key);
  // Segment 0 of any future refit: the same (idx, seed, key) triple this
  // plan resolved its cores under, so the refit's base segment is a pure
  // BatchCoreCache hit.
  segments_.push_back(BatchPlan::Segment{split.train, order_seed, key});

  Trainer trainer(*regressor_, train_cfg_, regressor_hooks(*regressor_),
                  seed * 17 + 2);
  if (warm && adam_state_) trainer.import_optimizer_state(*adam_state_);
  return train_regressor(plan, trainer, opts);
}

double QorPredictor::fit(const std::vector<Sample>& samples,
                         const SplitIndices& split, Metric metric) {
  return fit(samples, split, metric, FitOptions{}).best_val;
}

FitOptions QorPredictor::refit_defaults() {
  FitOptions opts;
  opts.warm_start = true;
  opts.epochs = 6;
  opts.validation = FitOptions::Validation::kFinalEpoch;
  return opts;
}

FitReport QorPredictor::refit(const std::vector<Sample>& new_samples,
                              const FitOptions& opts) {
  GNNHLS_CHECK(regressor_ != nullptr && !corpus_.empty(), "refit before fit");
  GNNHLS_CHECK(!new_samples.empty(), "refit: no feedback samples");
  tune_malloc_for_tensor_workloads();
  ++refits_;
  const std::uint64_t gen = static_cast<std::uint64_t>(refits_);
  const std::uint64_t seed = opts.seed != 0 ? opts.seed : fit_seed_;

  // Pay the delta's feature construction once, up front, in input order —
  // every later touch (plan assembly, scoring) is a FeatureCache hit.
  FeatureCache::global().warm(new_samples, approach_);

  const int base = static_cast<int>(corpus_.size());
  corpus_.insert(corpus_.end(), new_samples.begin(), new_samples.end());
  std::vector<int> delta_idx(new_samples.size());
  std::iota(delta_idx.begin(), delta_idx.end(), base);

  if (!opts.warm_start) {
    // Cold refit: retrain from a fresh seeded init over the grown corpus
    // (the -I classifier is kept either way — feedback refits sharpen the
    // regressor only).
    Rng init_rng(seed * 104729 + static_cast<int>(metric_));
    regressor_ = std::make_unique<GraphRegressor>(
        model_cfg_, InputFeatureBuilder::feature_dim(approach_), init_rng);
    adam_state_.reset();
  }

  const auto feature_of = [this](const Sample& s) -> const Matrix& {
    return FeatureCache::global().features(s, approach_);
  };
  const auto label_of = [this](const Sample& s) {
    return Matrix(1, 1, encode_target(metric_of(s.truth, metric_), metric_));
  };

  // The delta becomes its own segment with generation-salted seeds (pure
  // functions of (fit seed, generation): refit trajectories are reproducible
  // but decorrelated across rounds).
  const std::uint64_t seg_seed = seed * 31 + 1 + gen * 0x9E3779B9ULL;
  BatchPlan::Segment seg;
  seg.idx = delta_idx;
  seg.order_seed = seg_seed;
  seg.share_key = BatchPlan::share_key(
      "train/reg/a" + std::to_string(static_cast<int>(approach_)), seg_seed,
      train_cfg_.batch_size, corpus_, delta_idx);
  segments_.push_back(std::move(seg));

  BatchPlan plan =
      train_cfg_.batch_size <= 1
          // Legacy mode has no unions to reuse; train the concatenated
          // index list through the plain per-sample path.
          ? [&] {
              std::vector<int> all;
              for (const BatchPlan::Segment& s : segments_) {
                all.insert(all.end(), s.idx.begin(), s.idx.end());
              }
              return BatchPlan::build(corpus_, all, train_cfg_.batch_size,
                                      feature_of, label_of, Rng(seg_seed));
            }()
          : BatchPlan::build_segments(corpus_, segments_,
                                      train_cfg_.batch_size, feature_of,
                                      label_of, Rng(seed * 31 + 11 + gen));

  Trainer trainer(*regressor_, train_cfg_, regressor_hooks(*regressor_),
                  seed * 17 + 2 + gen * 0x85EBCA6BULL);
  if (opts.warm_start && adam_state_) {
    trainer.import_optimizer_state(*adam_state_);
  }
  return train_regressor(plan, trainer, opts);
}

double QorPredictor::predict(const Sample& sample) const {
  GNNHLS_CHECK(regressor_ != nullptr, "predict before fit");
  const float encoded =
      pure_inference_features()
          ? regressor_->predict(
                sample.tensors,
                FeatureCache::global().features(sample, approach_))
          : regressor_->predict(sample.tensors, infused_features(sample));
  return decode_target(encoded, metric_);
}

std::vector<double> QorPredictor::predict_many(
    const std::vector<const Sample*>& samples) const {
  GNNHLS_CHECK(regressor_ != nullptr, "predict before fit");
  if (samples.empty()) return {};
  // On the pure path the stacked features point straight into the
  // FeatureCache (zero rebuild, zero copy); the hierarchical -I path runs
  // the classifier per sample and owns its feature matrices for the
  // duration of the batch.
  const bool pure = pure_inference_features();
  std::vector<Matrix> owned;
  std::vector<const GraphTensors*> parts;
  std::vector<const Matrix*> fparts;
  if (pure) {
    fparts.reserve(samples.size());
  } else {
    owned.reserve(samples.size());
  }
  parts.reserve(samples.size());
  for (const Sample* s : samples) {
    GNNHLS_CHECK(s != nullptr, "predict_many: null sample");
    if (pure) {
      fparts.push_back(&FeatureCache::global().features(*s, approach_));
    } else {
      owned.push_back(infused_features(*s));
    }
    parts.push_back(&s->tensors);
  }
  const GraphBatch batch = GraphBatch::build(parts);
  const Matrix stacked = pure ? GraphBatch::stack_features(fparts)
                              : GraphBatch::stack_features(owned);
  const std::vector<float> encoded =
      regressor_->predict_batch(batch.merged, stacked);
  std::vector<double> pred;
  pred.reserve(encoded.size());
  for (float e : encoded) pred.push_back(decode_target(e, metric_));
  return pred;
}

double QorPredictor::evaluate_mape(const std::vector<Sample>& samples,
                                   const std::vector<int>& idx) const {
  GNNHLS_CHECK(regressor_ != nullptr, "evaluate before fit");
  std::vector<double> pred, truth;
  pred.reserve(idx.size());
  truth.reserve(idx.size());
  const std::size_t bs =
      static_cast<std::size_t>(std::max(train_cfg_.batch_size, 1));
  if (bs <= 1) {
    for (int i : idx) {
      const Sample& s = samples[static_cast<std::size_t>(i)];
      pred.push_back(predict(s));
      truth.push_back(metric_of(s.truth, metric_));
    }
  } else if (!pure_inference_features()) {
    // Hierarchical self-inferred features depend on the trained classifier,
    // so the chunk unions cannot come from the sample-keyed core cache;
    // keep the serial predict_many chunk loop.
    std::vector<const Sample*> chunk;
    chunk.reserve(bs);
    for (std::size_t pos = 0; pos < idx.size(); pos += bs) {
      const std::size_t end = std::min(pos + bs, idx.size());
      chunk.clear();
      for (std::size_t i = pos; i < end; ++i) {
        const Sample& s = samples[static_cast<std::size_t>(idx[i])];
        chunk.push_back(&s);
        truth.push_back(metric_of(s.truth, metric_));
      }
      for (double p : predict_many(chunk)) pred.push_back(p);
    }
  } else {
    // Sharded evaluation: the chunk unions come from an eval-side BatchPlan
    // (cores shared across epochs and refits via the BatchCoreCache) and
    // the per-chunk forwards fan out on the thread pool, each filling its
    // own pre-sized slot range. Chunk boundaries and per-chunk math are
    // exactly the serial loop's, so the result is bit-identical to serial
    // evaluation at any pool width.
    const BatchPlan plan = BatchPlan::build_eval(
        samples, idx, static_cast<int>(bs),
        [this](const Sample& s) -> const Matrix& {
          return FeatureCache::global().features(s, approach_);
        },
        BatchPlan::share_key(
            "eval/a" + std::to_string(static_cast<int>(approach_)),
            /*order_seed=*/0, static_cast<int>(bs), samples, idx));
    for (int i : idx) {
      truth.push_back(
          metric_of(samples[static_cast<std::size_t>(i)].truth, metric_));
    }
    pred.assign(idx.size(), 0.0);
    parallel_shards(plan.num_batches(), [&](int b) {
      // Per-chunk tape temporaries live in this worker's scratch arena.
      const ArenaScope scratch(train_cfg_.arena ? &thread_scratch_arena()
                                                : nullptr);
      const BatchPlan::Item& item = plan.item(b);
      const std::vector<float> encoded =
          regressor_->predict_batch(item.batch().merged, item.features());
      const std::size_t base = static_cast<std::size_t>(b) * bs;
      for (std::size_t j = 0; j < encoded.size(); ++j) {
        pred[base + j] = decode_target(encoded[j], metric_);
      }
    });
  }
  return mape(pred, truth);
}

// ----- NodeTypePredictor -----

NodeTypePredictor::NodeTypePredictor(ModelConfig model_cfg,
                                     TrainConfig train_cfg)
    : model_cfg_(model_cfg), train_cfg_(train_cfg) {}

FitReport NodeTypePredictor::fit(const std::vector<Sample>& samples,
                                 const SplitIndices& split,
                                 const FitOptions& opts) {
  tune_malloc_for_tensor_workloads();
  const std::uint64_t seed = opts.seed != 0 ? opts.seed : train_cfg_.seed;
  const bool warm = opts.warm_start && classifier_ != nullptr;
  if (!warm) {
    Rng init_rng(seed * 7919 + 13);
    classifier_ = std::make_unique<NodeClassifier>(
        model_cfg_, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf),
        init_rng);
    adam_state_.reset();
  }
  TrainConfig tc = train_cfg_;
  tc.seed = seed;
  BatchPlan plan = classifier_plan(samples, split.train, tc);
  Trainer trainer(*classifier_, tc, classifier_hooks(*classifier_),
                  seed * 17 + 3);
  if (warm && adam_state_) trainer.import_optimizer_state(*adam_state_);

  FitReport report;
  std::vector<Matrix> best_params;
  AdamState best_opt;
  const bool select_best =
      opts.validation == FitOptions::Validation::kBestEpoch;
  const FitReport run = trainer.fit(plan, opts, [&](int epoch) {
    const NodeClassifierScores val = evaluate(samples, split.val);
    const double mean_acc = (val.dsp + val.lut + val.ff) / 3.0;
    report.val_curve.push_back(mean_acc);
    if (report.best_epoch < 0 || mean_acc > report.best_val) {
      report.best_val = mean_acc;
      report.best_epoch = epoch;
      if (select_best) {
        best_params = snapshot_parameters(*classifier_);
        best_opt = trainer.export_optimizer_state();
      }
    }
  });
  report.epochs_run = run.epochs_run;
  report.steps = run.steps;
  report.warm_started = run.warm_started;
  if (select_best && !best_params.empty()) {
    restore_parameters(*classifier_, best_params);
    adam_state_ = std::move(best_opt);
  } else {
    adam_state_ = trainer.export_optimizer_state();
  }
  return report;
}

double NodeTypePredictor::fit(const std::vector<Sample>& samples,
                              const SplitIndices& split) {
  return fit(samples, split, FitOptions{}).best_val;
}

NodeClassifierScores NodeTypePredictor::evaluate(
    const std::vector<Sample>& samples, const std::vector<int>& idx) const {
  GNNHLS_CHECK(classifier_ != nullptr, "evaluate before fit");
  std::array<std::vector<int>, 3> pred, truth;
  for (int i : idx) {
    const Sample& s = samples[static_cast<std::size_t>(i)];
    const Matrix& feats =
        FeatureCache::global().features(s, Approach::kOffTheShelf);
    const auto inferred = classifier_->infer_types(s.tensors, feats);
    const Matrix& labels = FeatureCache::global().node_type_labels(s);
    for (int v = 0; v < s.graph().num_nodes(); ++v) {
      const auto& t = inferred[static_cast<std::size_t>(v)];
      pred[0].push_back(t.dsp > 0.5F);
      pred[1].push_back(t.lut > 0.5F);
      pred[2].push_back(t.ff > 0.5F);
      truth[0].push_back(labels(v, 0) > 0.5F);
      truth[1].push_back(labels(v, 1) > 0.5F);
      truth[2].push_back(labels(v, 2) > 0.5F);
    }
  }
  NodeClassifierScores scores;
  scores.dsp = binary_accuracy(pred[0], truth[0]);
  scores.lut = binary_accuracy(pred[1], truth[1]);
  scores.ff = binary_accuracy(pred[2], truth[2]);
  return scores;
}

}  // namespace gnnhls
