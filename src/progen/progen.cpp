#include "progen/progen.h"

#include <string>
#include <vector>

#include "support/rng.h"

namespace gnnhls {

namespace {

/// Live-variable bookkeeping shared by both generators.
class ExprSampler {
 public:
  ExprSampler(Rng& rng, const ProgenConfig& cfg) : rng_(rng), cfg_(cfg) {}

  void add_live(std::string name, int bits) {
    live_.push_back({std::move(name), bits});
  }
  bool has_live() const { return !live_.empty(); }
  int live_count() const { return static_cast<int>(live_.size()); }

  /// Scope management: values declared inside a nested block die at its
  /// end, so builders snapshot and restore the live set around recursion.
  std::size_t scope_mark() const { return live_.size(); }
  void scope_restore(std::size_t mark) { live_.resize(mark); }

  int random_bits() {
    static const std::vector<int> narrow = {8, 16, 24, 32, 32, 32};
    static const std::vector<int> wide = {8, 16, 24, 32, 32, 32, 48, 64};
    return rng_.choice(cfg_.wide_ops ? wide : narrow);
  }

  /// Operand: biased toward recently defined live variables (ldrgen's
  /// liveness-driven choice), falling back to literals.
  ExprPtr operand() {
    if (has_live() && rng_.uniform() < 0.8) {
      // Geometric bias toward the most recent definitions.
      int idx = live_count() - 1;
      while (idx > 0 && rng_.uniform() < 0.45) --idx;
      return var(live_[static_cast<std::size_t>(idx)].name);
    }
    return lit(rng_.uniform_int(-128, 128), random_bits());
  }

  /// A random arithmetic/bitwise expression of bounded depth.
  ExprPtr expression(int depth) {
    if (depth <= 0 || rng_.uniform() < 0.35) return operand();
    const double roll = rng_.uniform();
    if (roll < 0.06) {
      return un(rng_.uniform() < 0.5 ? UnOpKind::kNeg : UnOpKind::kNot,
                expression(depth - 1));
    }
    if (roll < 0.12) {
      return select(
          bin(comparison_op(), expression(depth - 1), expression(depth - 1)),
          expression(depth - 1), expression(depth - 1));
    }
    if (roll < 0.18) {
      return cast(expression(depth - 1), random_bits());
    }
    return bin(arith_op(), expression(depth - 1), expression(depth - 1));
  }

  BinOpKind arith_op() {
    // Weighted sample: adds/bitwise dominate real code, multiplies are
    // common (and the DSP signal of the corpus), divides rare.
    const int r = rng_.weighted_index(
        {20, 10, 22, 3, 2, 8, 7, 8, 6, 6});  // add sub mul div rem and or xor shl shr
    static const BinOpKind ops[] = {
        BinOpKind::kAdd, BinOpKind::kSub, BinOpKind::kMul, BinOpKind::kDiv,
        BinOpKind::kRem, BinOpKind::kAnd, BinOpKind::kOr,  BinOpKind::kXor,
        BinOpKind::kShl, BinOpKind::kShr};
    return ops[r];
  }

  BinOpKind comparison_op() {
    static const std::vector<BinOpKind> ops = {
        BinOpKind::kLt, BinOpKind::kGt, BinOpKind::kLe,
        BinOpKind::kGe, BinOpKind::kEq, BinOpKind::kNe};
    return rng_.choice(ops);
  }

  std::string fresh_name() { return "v" + std::to_string(counter_++); }

 private:
  struct Live {
    std::string name;
    int bits;
  };
  Rng& rng_;
  const ProgenConfig& cfg_;
  std::vector<Live> live_;
  int counter_ = 0;
};

}  // namespace

Function generate_dfg_program(std::uint64_t seed, const ProgenConfig& cfg) {
  Rng rng(seed);
  ExprSampler sampler(rng, cfg);
  Function f;
  f.name = "dfg_prog_" + std::to_string(seed);

  // 2–4 scalar input ports.
  const int num_inputs = rng.uniform_int(2, 4);
  for (int i = 0; i < num_inputs; ++i) {
    const int bits = sampler.random_bits();
    const std::string name = "in" + std::to_string(i);
    f.params.push_back(Param{name, ScalarType{bits, true}, 0, false});
    sampler.add_live(name, bits);
  }

  const int num_ops = rng.uniform_int(cfg.min_ops, cfg.max_ops);
  for (int i = 0; i < num_ops; ++i) {
    const std::string name = sampler.fresh_name();
    const int bits = sampler.random_bits();
    f.body.push_back(
        decl(name, ScalarType{bits, true}, sampler.expression(2)));
    sampler.add_live(name, bits);
  }
  // Live-out: return the last value (remaining unconsumed values become
  // write ports during lowering).
  f.body.push_back(ret(var("v" + std::to_string(num_ops - 1))));
  return f;
}

namespace {

/// Recursive random statement-list builder for CDFG programs.
class CdfgBuilder {
 public:
  CdfgBuilder(Rng& rng, const ProgenConfig& cfg)
      : rng_(rng), cfg_(cfg), sampler_(rng, cfg) {}

  Function build(std::uint64_t seed) {
    Function f;
    f.name = "cdfg_prog_" + std::to_string(seed);
    const int num_inputs = rng_.uniform_int(2, 3);
    for (int i = 0; i < num_inputs; ++i) {
      const int bits = sampler_.random_bits();
      const std::string name = "in" + std::to_string(i);
      f.params.push_back(Param{name, ScalarType{bits, true}, 0, false});
      sampler_.add_live(name, bits);
      scalars_.push_back(name);
    }
    const int num_arrays = rng_.uniform_int(1, cfg_.max_arrays);
    for (int i = 0; i < num_arrays; ++i) {
      const std::string name = "arr" + std::to_string(i);
      const int size = rng_.uniform_int(8, cfg_.max_array_size);
      f.body.push_back(decl_array(name, ScalarType{32, true}, size));
      arrays_.push_back({name, size});
    }

    const int num_stmts = rng_.uniform_int(cfg_.min_stmts, cfg_.max_stmts);
    auto stmts = statements(num_stmts, /*depth=*/0);
    for (auto& s : stmts) f.body.push_back(std::move(s));
    f.body.push_back(ret(sampler_.operand()));
    return f;
  }

 private:
  std::vector<StmtPtr> statements(int budget, int depth) {
    std::vector<StmtPtr> out;
    while (budget > 0) {
      const double roll = rng_.uniform();
      if (roll < 0.28 && depth < cfg_.max_loop_depth) {
        const int inner = std::min(budget - 1, rng_.uniform_int(2, 6));
        out.push_back(make_loop(inner, depth));
        budget -= inner + 1;
      } else if (roll < 0.42 && depth < cfg_.max_loop_depth + 1) {
        const int inner = std::min(budget - 1, rng_.uniform_int(1, 4));
        out.push_back(make_if(inner, depth));
        budget -= inner + 1;
      } else {
        out.push_back(make_simple());
        budget -= 1;
      }
    }
    return out;
  }

  StmtPtr make_simple() {
    const double roll = rng_.uniform();
    if (!arrays_.empty() && roll < 0.22) {
      const auto& [name, size] = rng_.choice(arrays_);
      return assign_array(name, bounded_index(size), sampler_.expression(2));
    }
    if (!arrays_.empty() && roll < 0.40) {
      const auto& [name, size] = rng_.choice(arrays_);
      const std::string v = sampler_.fresh_name();
      auto s = decl(v, ScalarType{32, true},
                    bin(BinOpKind::kAdd, aref(name, bounded_index(size)),
                        sampler_.expression(1)));
      sampler_.add_live(v, 32);
      scalars_.push_back(v);
      return s;
    }
    if (!scalars_.empty() && roll < 0.62) {
      const std::string& target = rng_.choice(scalars_);
      return assign(target, sampler_.expression(2));
    }
    const std::string v = sampler_.fresh_name();
    const int bits = sampler_.random_bits();
    auto s = decl(v, ScalarType{bits, true}, sampler_.expression(2));
    sampler_.add_live(v, bits);
    scalars_.push_back(v);
    return s;
  }

  StmtPtr make_loop(int body_budget, int depth) {
    const std::string iv = "i" + std::to_string(loop_counter_++);
    const long trip = rng_.uniform_int(2, cfg_.max_trip_count);
    const auto live_mark = sampler_.scope_mark();
    const auto scalar_mark = scalars_.size();
    sampler_.add_live(iv, 32);
    scalars_.push_back(iv);
    auto body = statements(body_budget, depth + 1);
    // Everything declared in the body (and the induction variable) is out
    // of scope after the loop.
    sampler_.scope_restore(live_mark);
    scalars_.resize(scalar_mark);
    return for_stmt(iv, 0, trip, 1, std::move(body));
  }

  StmtPtr make_if(int body_budget, int depth) {
    auto cond = bin(sampler_.comparison_op(), sampler_.expression(1),
                    sampler_.expression(1));
    const auto live_mark = sampler_.scope_mark();
    const auto scalar_mark = scalars_.size();
    auto then_body = statements(std::max(body_budget / 2, 1), depth + 1);
    sampler_.scope_restore(live_mark);
    scalars_.resize(scalar_mark);
    std::vector<StmtPtr> else_body;
    if (rng_.uniform() < 0.55 && body_budget > 1) {
      else_body = statements(body_budget - body_budget / 2, depth + 1);
      sampler_.scope_restore(live_mark);
      scalars_.resize(scalar_mark);
    }
    return if_stmt(std::move(cond), std::move(then_body),
                   std::move(else_body));
  }

  /// Index expressions are masked into range (synthesizable access).
  ExprPtr bounded_index(int size) {
    // x & (2^k - 1) with 2^k <= size keeps indices in bounds.
    int mask = 1;
    while (mask * 2 <= size) mask *= 2;
    return bin(BinOpKind::kAnd, sampler_.expression(1), lit(mask - 1, 32));
  }

  Rng& rng_;
  const ProgenConfig& cfg_;
  ExprSampler sampler_;
  std::vector<std::string> scalars_;
  std::vector<std::pair<std::string, int>> arrays_;
  int loop_counter_ = 0;
};

}  // namespace

namespace {

bool stmts_contain_loop(const std::vector<StmtPtr>& stmts) {
  for (const auto& s : stmts) {
    if (s->kind == Stmt::Kind::kFor) return true;
    if (stmts_contain_loop(s->body) || stmts_contain_loop(s->else_body)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Function generate_cdfg_program(std::uint64_t seed, const ProgenConfig& cfg) {
  Rng rng(seed);
  CdfgBuilder builder(rng, cfg);
  Function f = builder.build(seed);
  // The CDFG population is defined by loops (§3.1: "CDFGs are extracted
  // from programs with loops"); guarantee at least one.
  if (!stmts_contain_loop(f.body)) {
    std::vector<StmtPtr> body;
    body.push_back(decl("acc_fix", ScalarType{32, true},
                        bin(BinOpKind::kAdd, var("in0"), lit(1, 32))));
    f.body.insert(f.body.end() - 1,
                  for_stmt("i_fix", 0, 8, 1, std::move(body)));
  }
  return f;
}

}  // namespace gnnhls
