// dse/ subsystem tests: Pareto-front correctness on hand-built dominance
// cases, deterministic design-space enumeration, and the explorer
// determinism contract — results bit-identical across thread-pool widths
// and across the direct predict_many vs ServingBatcher scoring paths.
#include <gtest/gtest.h>

#include "dse/explorer.h"
#include "suites/variants.h"
#include "support/parallel.h"

namespace gnnhls {
namespace {

// ----- pareto.h -----

TEST(ParetoTest, DominatesIsStrict) {
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_TRUE(dominates({1.0, 2.0}, {1.0, 3.0}));
  EXPECT_FALSE(dominates({1.0, 1.0}, {1.0, 1.0}));  // equal: no dominance
  EXPECT_FALSE(dominates({0.0, 3.0}, {3.0, 0.0}));  // trade-off
  EXPECT_THROW(dominates({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(ParetoTest, HandBuiltFront) {
  // 1 is dominated by 0; 4 duplicates 0 (tie-break keeps the first).
  const std::vector<std::vector<double>> points = {
      {1.0, 1.0}, {2.0, 2.0}, {0.0, 3.0}, {3.0, 0.0}, {1.0, 1.0}};
  EXPECT_EQ(pareto_front(points), (std::vector<int>{0, 2, 3}));
}

TEST(ParetoTest, AllEqualKeepsFirstOnly) {
  const std::vector<std::vector<double>> points = {
      {5.0, 5.0}, {5.0, 5.0}, {5.0, 5.0}};
  EXPECT_EQ(pareto_front(points), (std::vector<int>{0}));
}

TEST(ParetoTest, SingleAxisIsArgmin) {
  const std::vector<std::vector<double>> points = {{3.0}, {1.0}, {2.0}, {1.0}};
  EXPECT_EQ(pareto_front(points), (std::vector<int>{1}));
}

TEST(ParetoTest, EmptyAndSingleton) {
  EXPECT_TRUE(pareto_front({}).empty());
  EXPECT_EQ(pareto_front({{7.0, 7.0}}), (std::vector<int>{0}));
}

// ----- design_space.h -----

TEST(DesignSpaceTest, DeterministicEnumeration) {
  const DesignSpace space = make_kernel_design_space("gemm");
  EXPECT_EQ(space.size(), 12u);  // 4 unroll x 3 bitwidth x 1 clock x 1 unc
  const std::vector<DesignPoint> a = space.enumerate();
  const std::vector<DesignPoint> b = space.enumerate();
  ASSERT_EQ(a.size(), space.size());
  ASSERT_EQ(b.size(), space.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, static_cast<int>(i));
    EXPECT_EQ(a[i].label(), b[i].label());
    EXPECT_EQ(a[i].unroll, b[i].unroll);
    EXPECT_EQ(a[i].bitwidth, b[i].bitwidth);
    EXPECT_EQ(a[i].hls.clock_ns, b[i].hls.clock_ns);
    EXPECT_EQ(a[i].hls.clock_uncertainty, b[i].hls.clock_uncertainty);
  }
  // Labels are unique: every point is a distinct knob combination.
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(a[i].label(), a[j].label());
    }
  }
}

TEST(DesignSpaceTest, GridGrowthIsDeterministic) {
  const KnobGrid g = grid_with_at_least(40);
  EXPECT_GE(g.size(), 40u);
  const KnobGrid h = grid_with_at_least(40);
  EXPECT_EQ(g.bitwidth, h.bitwidth);
  EXPECT_EQ(g.clock_ns, h.clock_ns);
  EXPECT_THROW(grid_with_at_least(100000), std::invalid_argument);
}

TEST(DesignSpaceTest, CandidateIsPredictionReadyWithoutHls) {
  const DesignSpace space = make_kernel_design_space("fir");
  const std::vector<DesignPoint> points = space.enumerate();
  const Sample s = space.lower_candidate(points[0]);
  EXPECT_GT(s.graph().num_nodes(), 0);
  EXPECT_EQ(s.tensors.num_nodes, s.graph().num_nodes());
  // No HLS flow has run: ground truth is untouched.
  for (Metric m : kAllMetrics) EXPECT_EQ(metric_of(s.truth, m), 0.0);
}

TEST(DesignSpaceTest, UnrollGrowsTheGraph) {
  const DesignSpace space = make_kernel_design_space("stencil");
  DesignPoint narrow, wide;
  narrow.unroll = 1;
  narrow.bitwidth = 16;
  wide.unroll = 8;
  wide.bitwidth = 16;
  EXPECT_LT(space.lower_candidate(narrow).graph().num_nodes(),
            space.lower_candidate(wide).graph().num_nodes());
}

TEST(DesignSpaceTest, UnknownKernelThrows) {
  EXPECT_THROW(make_kernel_design_space("fft"), std::invalid_argument);
  EXPECT_THROW(make_variant("fft", 1, 32), std::invalid_argument);
}

TEST(VariantTest, KnobValidation) {
  EXPECT_THROW(make_gemm_variant(3, 32), std::invalid_argument);  // 3 ∤ 64
  EXPECT_THROW(make_gemm_variant(0, 32), std::invalid_argument);
  EXPECT_THROW(make_fir_variant(1, 1), std::invalid_argument);
  for (const VariantKernel& k : dse_variant_kernels()) {
    const Function f = k.build(2, 16);
    EXPECT_TRUE(f.has_control_flow());  // all variants lower to CDFGs
    EXPECT_NE(f.name.find(k.name), std::string::npos);
  }
}

// ----- explorer.h -----

/// Restores the default pool on scope exit (mirrors train_test).
struct PoolGuard {
  explicit PoolGuard(int threads) { ThreadPool::set_global_threads(threads); }
  ~PoolGuard() { ThreadPool::set_global_threads(0); }
};

struct Trained {
  QorPredictor lut;
  QorPredictor ff;
};

/// One tiny LUT + FF predictor pair, trained once and shared by all
/// explorer tests (fitting dominates test runtime).
const Trained& trained_predictors() {
  static const Trained* trained = [] {
    SyntheticDatasetConfig dc;
    dc.kind = GraphKind::kCdfg;
    dc.num_graphs = 60;
    dc.seed = 33;
    const std::vector<Sample> corpus = build_synthetic_dataset(dc);
    const SplitIndices split =
        split_80_10_10(static_cast<int>(corpus.size()), 3);
    ModelConfig mc;
    mc.kind = GnnKind::kRgcn;
    mc.hidden = 16;
    mc.layers = 2;
    TrainConfig tc;
    tc.epochs = 6;
    tc.lr = 1e-2F;
    tc.batch_size = 8;
    auto* t = new Trained{QorPredictor(Approach::kOffTheShelf, mc, tc),
                          QorPredictor(Approach::kOffTheShelf, mc, tc)};
    t->lut.fit(corpus, split, Metric::kLut);
    t->ff.fit(corpus, split, Metric::kFf);
    return t;
  }();
  return *trained;
}

PredictorScorer direct_scorer() {
  const Trained& t = trained_predictors();
  return PredictorScorer(
      {{Metric::kLut, &t.lut}, {Metric::kFf, &t.ff}});
}

DesignSpace small_space() {
  KnobGrid grid;
  grid.unroll = {1, 2};
  grid.bitwidth = {8, 16};
  return make_kernel_design_space("gemm", grid);
}

void expect_identical_results(const DseResult& a, const DseResult& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].point.label(), b.candidates[i].point.label());
    EXPECT_EQ(a.candidates[i].predicted, b.candidates[i].predicted);
    EXPECT_EQ(a.candidates[i].synthesized, b.candidates[i].synthesized);
    EXPECT_EQ(a.candidates[i].latency_cycles, b.candidates[i].latency_cycles);
    for (Metric m : kAllMetrics) {
      EXPECT_EQ(metric_of(a.candidates[i].sample.truth, m),
                metric_of(b.candidates[i].sample.truth, m));
    }
  }
  EXPECT_EQ(a.front, b.front);
  EXPECT_EQ(a.predicted_front, b.predicted_front);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.hls_runs, b.hls_runs);
  EXPECT_EQ(a.survivors_per_round, b.survivors_per_round);
}

TEST(ExplorerTest, ExhaustiveSynthesizesEveryPoint) {
  const DesignSpace space = small_space();
  const PredictorScorer scorer = direct_scorer();
  const Explorer explorer(space, scorer);
  const DseResult r = explorer.exhaustive();
  ASSERT_EQ(r.candidates.size(), space.size());
  EXPECT_EQ(r.hls_runs, static_cast<int>(space.size()));
  EXPECT_EQ(r.survivors_per_round, (std::vector<int>{4}));
  for (const DseCandidate& c : r.candidates) {
    EXPECT_TRUE(c.synthesized);
    EXPECT_GT(metric_of(c.sample.truth, Metric::kLut), 0.0);
    EXPECT_GT(c.predicted[static_cast<std::size_t>(Metric::kLut)], 0.0);
  }
  ASSERT_FALSE(r.front.empty());
  ASSERT_GE(r.best, 0);
  // best is the true rank-metric argmin and sits on the front.
  for (const DseCandidate& c : r.candidates) {
    EXPECT_LE(metric_of(
                  r.candidates[static_cast<std::size_t>(r.best)].sample.truth,
                  Metric::kLut),
              metric_of(c.sample.truth, Metric::kLut));
  }
}

TEST(ExplorerTest, BitIdenticalAcrossThreadCounts) {
  const DesignSpace space = small_space();
  const PredictorScorer scorer = direct_scorer();
  DseResult serial_exh, serial_sh;
  {
    PoolGuard guard(1);
    // Construct inside the guard: candidate lowering happens at
    // construction and must be width-invariant too.
    const Explorer explorer(space, scorer);
    serial_exh = explorer.exhaustive();
    serial_sh = explorer.successive_halving();
  }
  {
    PoolGuard guard(4);
    const Explorer explorer(space, scorer);
    expect_identical_results(serial_exh, explorer.exhaustive());
    expect_identical_results(serial_sh, explorer.successive_halving());
  }
}

TEST(ExplorerTest, ServingScorerBitIdenticalToDirect) {
  const Trained& t = trained_predictors();
  const DesignSpace space = small_space();
  const PredictorScorer direct = direct_scorer();
  SchedulerConfig sc;
  sc.max_batch = 3;  // forces uneven micro-batch splits of the 4 candidates
  sc.batch_window_us = 0;
  const ServingScorer serving(
      {{Metric::kLut, &t.lut}, {Metric::kFf, &t.ff}}, sc);
  EXPECT_EQ(serving.metrics(), direct.metrics());
  const Explorer via_direct(space, direct);
  const Explorer via_serving(space, serving);
  expect_identical_results(via_direct.exhaustive(), via_serving.exhaustive());
  expect_identical_results(via_direct.successive_halving(),
                           via_serving.successive_halving());
}

TEST(ExplorerTest, HalvingRespectsGroundTruthBudget) {
  const DesignSpace space = make_kernel_design_space("gemm");  // 12 points
  const PredictorScorer scorer = direct_scorer();
  DseConfig cfg;
  cfg.top_k = 3;
  const Explorer explorer(space, scorer, cfg);
  const DseResult r = explorer.successive_halving();
  EXPECT_EQ(r.survivors_per_round, (std::vector<int>{12, 6, 3}));
  EXPECT_EQ(r.hls_runs, 3);
  int synthesized = 0;
  for (const DseCandidate& c : r.candidates) synthesized += c.synthesized;
  EXPECT_EQ(synthesized, 3);
  // The front only contains synthesized survivors, and best is one of them.
  for (int i : r.front) {
    EXPECT_TRUE(r.candidates[static_cast<std::size_t>(i)].synthesized);
  }
  ASSERT_GE(r.best, 0);
  EXPECT_TRUE(r.candidates[static_cast<std::size_t>(r.best)].synthesized);
  // Rounds 0 scored 2 metrics over 12; round 1 re-scored 1 metric over 6.
  EXPECT_EQ(r.scorer_calls, 3);
  EXPECT_EQ(r.scored_graphs, 2 * 12 + 6);
}

TEST(ExplorerTest, HalvingAgreesWithExhaustiveOnPredictions) {
  const DesignSpace space = make_kernel_design_space("gemm");
  const PredictorScorer scorer = direct_scorer();
  DseConfig cfg;
  cfg.top_k = 3;
  const Explorer explorer(space, scorer, cfg);
  const DseResult exh = explorer.exhaustive();
  const DseResult sh = explorer.successive_halving();
  // Predictions and the predicted front are strategy-independent.
  ASSERT_EQ(exh.candidates.size(), sh.candidates.size());
  for (std::size_t i = 0; i < exh.candidates.size(); ++i) {
    EXPECT_EQ(exh.candidates[i].predicted, sh.candidates[i].predicted);
  }
  EXPECT_EQ(exh.predicted_front, sh.predicted_front);
  // Survivors' ground truth matches the exhaustive sweep bit-for-bit.
  for (std::size_t i = 0; i < sh.candidates.size(); ++i) {
    if (!sh.candidates[i].synthesized) continue;
    for (Metric m : kAllMetrics) {
      EXPECT_EQ(metric_of(sh.candidates[i].sample.truth, m),
                metric_of(exh.candidates[i].sample.truth, m));
    }
  }
}

TEST(ExplorerTest, ConfigValidation) {
  const DesignSpace space = small_space();
  const PredictorScorer scorer = direct_scorer();
  DseConfig bad_topk;
  bad_topk.top_k = 0;
  EXPECT_THROW(Explorer(space, scorer, bad_topk), std::invalid_argument);
  DseConfig dup;
  dup.front_metrics = {Metric::kLut, Metric::kLut};
  EXPECT_THROW(Explorer(space, scorer, dup), std::invalid_argument);
  DseConfig unserved;
  unserved.front_metrics = {Metric::kDsp};  // scorer only has LUT + FF
  EXPECT_THROW(Explorer(space, scorer, unserved), std::invalid_argument);
  const PredictorScorer empty_scorer(
      std::vector<std::pair<Metric, const QorPredictor*>>{});
  EXPECT_THROW(empty_scorer.score(Metric::kLut, {}), std::invalid_argument);
}

}  // namespace
}  // namespace gnnhls
