// Failure-injection and boundary-condition tests across modules.
#include <cmath>

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "gnn/encoders.h"
#include "gnn/models.h"

namespace gnnhls {
namespace {

/// A single-node graph: no edges at all. Every encoder must handle the
/// empty-edge paths (gather/scatter over zero edges, empty relations,
/// attention with only self loops).
Sample single_node_sample() {
  Function f;
  f.name = "tiny";
  f.params.push_back(Param{"a", ScalarType{32, true}, 0, false});
  f.body.push_back(ret(var("a")));
  return make_sample(f, GraphKind::kDfg, HlsConfig{}, "tiny");
}

class SingleNodeEncoderTest : public ::testing::TestWithParam<GnnKind> {};

TEST_P(SingleNodeEncoderTest, HandlesGraphWithFewEdges) {
  const Sample s = single_node_sample();
  Rng rng(3);
  EncoderConfig cfg;
  cfg.in_dim = InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
  cfg.hidden = 8;
  cfg.layers = 2;
  const auto enc = make_encoder(GetParam(), cfg, rng);
  const Matrix feats =
      InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
  Tape tape;
  Rng drop(1);
  const Var h = enc->encode(tape, s.tensors, tape.leaf(feats), drop, false);
  EXPECT_EQ(h.rows(), s.graph().num_nodes());
  for (std::size_t i = 0; i < h.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(h.value().data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SingleNodeEncoderTest, ::testing::ValuesIn(all_gnn_kinds()),
    [](const ::testing::TestParamInfo<GnnKind>& info) {
      std::string name = gnn_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(EdgeCaseTest, RegressorPredictsOnTinyGraph) {
  const Sample s = single_node_sample();
  Rng rng(5);
  ModelConfig mc;
  mc.kind = GnnKind::kPna;  // degree scalers must not divide by zero
  mc.hidden = 8;
  mc.layers = 1;
  GraphRegressor model(
      mc, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf), rng);
  const Matrix feats =
      InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
  EXPECT_TRUE(std::isfinite(model.predict(s.tensors, feats)));
}

TEST(EdgeCaseTest, EncoderConfigValidation) {
  Rng rng(1);
  EXPECT_THROW(make_encoder(GnnKind::kGcn, EncoderConfig{0, 8, 2, 0.0F}, rng),
               std::invalid_argument);
  EXPECT_THROW(make_encoder(GnnKind::kGcn, EncoderConfig{8, 0, 2, 0.0F}, rng),
               std::invalid_argument);
  EXPECT_THROW(make_encoder(GnnKind::kGcn, EncoderConfig{8, 8, 0, 0.0F}, rng),
               std::invalid_argument);
}

TEST(EdgeCaseTest, DropoutOneRejected) {
  Tape tape;
  Rng rng(1);
  const Var x = tape.leaf(Matrix(2, 2, 1.0F), true);
  EXPECT_THROW(tape.dropout(x, 1.0F, rng, true), std::invalid_argument);
}

TEST(EdgeCaseTest, DropoutZeroIsIdentity) {
  Tape tape;
  Rng rng(1);
  const Var x = tape.leaf(Matrix(2, 2, 3.0F), true);
  const Var y = tape.dropout(x, 0.0F, rng, true);
  EXPECT_TRUE(y.value() == x.value());
}

TEST(EdgeCaseTest, FitRejectsEmptySplit) {
  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kDfg;
  dc.num_graphs = 12;
  const auto samples = build_synthetic_dataset(dc);
  SplitIndices bad;
  bad.train = {};
  bad.val = {0};
  bad.test = {1};
  ModelConfig mc;
  mc.hidden = 8;
  mc.layers = 1;
  QorPredictor predictor(Approach::kOffTheShelf, mc, TrainConfig{.epochs = 1});
  EXPECT_THROW(predictor.fit(samples, bad, Metric::kLut),
               std::invalid_argument);
}

TEST(EdgeCaseTest, GatherRowsRejectsBadIndex) {
  Tape tape;
  const Var x = tape.leaf(Matrix(3, 2, 1.0F));
  EXPECT_THROW(tape.gather_rows(x, {0, 3}), std::invalid_argument);
  EXPECT_THROW(tape.gather_rows(x, {-1}), std::invalid_argument);
}

TEST(EdgeCaseTest, ScatterRejectsBadTarget) {
  Tape tape;
  const Var x = tape.leaf(Matrix(2, 2, 1.0F));
  EXPECT_THROW(tape.scatter_add_rows(x, {0, 5}, 3), std::invalid_argument);
  EXPECT_THROW(tape.scatter_add_rows(x, {0}, 3), std::invalid_argument);
}

TEST(EdgeCaseTest, SliceColsRangeValidation) {
  Tape tape;
  const Var x = tape.leaf(Matrix(2, 4, 1.0F));
  EXPECT_THROW(tape.slice_cols(x, 2, 2), std::invalid_argument);
  EXPECT_THROW(tape.slice_cols(x, -1, 2), std::invalid_argument);
  EXPECT_THROW(tape.slice_cols(x, 0, 5), std::invalid_argument);
}

TEST(EdgeCaseTest, SegmentSoftmaxRequiresColumn) {
  Tape tape;
  const Var x = tape.leaf(Matrix(3, 2, 1.0F));
  EXPECT_THROW(tape.segment_softmax(x, {0, 0, 1}, 2), std::invalid_argument);
}

TEST(EdgeCaseTest, HugeBitwidthClampedInResourceModel) {
  ResourceLibrary lib;
  const OpCost c = lib.cost(Opcode::kAdd, 256);
  EXPECT_TRUE(std::isfinite(c.lut));
  EXPECT_GT(c.lut, lib.cost(Opcode::kAdd, 8).lut);
}

TEST(EdgeCaseTest, TrainingSurvivesZeroTargetGraphs) {
  // All-zero DSP targets (no wide multiplies) must not break training or
  // MAPE evaluation (floor guards the denominator).
  ProgenConfig pc;
  pc.min_ops = 4;
  pc.max_ops = 8;
  pc.wide_ops = false;
  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kDfg;
  dc.num_graphs = 20;
  dc.progen = pc;
  const auto samples = build_synthetic_dataset(dc);
  const SplitIndices split = split_80_10_10(20, 3);
  ModelConfig mc;
  mc.hidden = 8;
  mc.layers = 1;
  QorPredictor predictor(Approach::kOffTheShelf, mc,
                         TrainConfig{.epochs = 3});
  const double val = predictor.fit(samples, split, Metric::kDsp);
  EXPECT_TRUE(std::isfinite(val));
}

}  // namespace
}  // namespace gnnhls
