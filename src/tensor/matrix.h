// Dense row-major float matrix — the only numeric container in the library.
//
// Node features, messages, weights and gradients are all [rows, cols]
// matrices; graph structure enters through the gather/scatter ops in
// autograd.h rather than through sparse matrix types.
#pragma once

#include <cstddef>
#include <vector>

#include "support/arena.h"
#include "support/check.h"
#include "support/rng.h"

namespace gnnhls {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, float fill = 0.0F)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              fill) {
    GNNHLS_CHECK(rows >= 0 && cols >= 0, "negative matrix dimension");
  }

  static Matrix zeros(int rows, int cols) { return Matrix(rows, cols, 0.0F); }

  /// Gaussian init with the given stddev (used by nn layer initializers).
  static Matrix randn(int rows, int cols, Rng& rng, float stddev = 1.0F);

  /// Builds a [n,1] column from a std::vector.
  static Matrix column(const std::vector<float>& values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int r, int c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  float& operator()(int r, int c) { return at(r, c); }
  float operator()(int r, int c) const { return at(r, c); }

  float* row_ptr(int r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  const float* row_ptr(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// In-place accumulate: *this += other (shapes must match).
  void add_inplace(const Matrix& other);
  /// In-place accumulate with scale: *this += alpha * other.
  void add_scaled_inplace(const Matrix& other, float alpha);

  /// Squared Frobenius norm; used by gradient-norm diagnostics.
  double squared_norm() const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  /// Element storage is arena-aware: inside an ArenaScope new matrices bump-
  /// allocate from the scope's arena (per-batch temporaries), everywhere else
  /// they are plain heap vectors. See support/arena.h for the lifetime rules.
  std::vector<float, ArenaAllocator<float>> data_;
};

/// Opt-in allocator tuning for tensor-churn workloads (training loops):
/// raises glibc's mmap/trim thresholds so large activation/gradient
/// buffers recycle on the heap instead of round-tripping through mmap.
/// Idempotent; a no-op off glibc. Trades resident-set retention for step
/// latency, so it is called from training entry points (QorPredictor::fit,
/// NodeTypePredictor::fit, the bench harness) rather than applied to every
/// linking process; call it yourself if you drive training loops directly
/// through Adam/GraphRegressor.
void tune_malloc_for_tensor_workloads();

/// out = a * b. Dense path is k-j register-blocked (multi-row tiles share
/// each b-row load) and row-parallel on the global pool; per-element
/// accumulation stays in ascending-k order, so results are bit-identical to
/// matmul_reference at any thread count and any tile shape. Sparse operands
/// (detected by sampling) take a zero-skipping scalar path instead.
/// Compile with -DGNNHLS_SIMD=ON for an explicit AVX2 inner kernel on the
/// dense path (same per-element operation order, still bit-identical).
Matrix matmul(const Matrix& a, const Matrix& b);
/// out = a^T * b (avoids materializing the transpose).
Matrix matmul_transpose_a(const Matrix& a, const Matrix& b);
/// out = a * b^T. Register-blocked over output columns: up to four
/// independent dot-product chains share each a-row load (ILP instead of one
/// latency-bound chain); every chain sums in ascending k, bit-identical to
/// matmul_transpose_b_reference.
Matrix matmul_transpose_b(const Matrix& a, const Matrix& b);

/// Serial, unblocked reference kernels (the historical loops). Tests and
/// bench_micro hard-assert the blocked/parallel kernels against these —
/// they are the ground truth of the bit-identity contract, not a fast path.
Matrix matmul_reference(const Matrix& a, const Matrix& b);
Matrix matmul_transpose_b_reference(const Matrix& a, const Matrix& b);

}  // namespace gnnhls
