// Wall-clock timing helper for the benches and the Fig. 1 timeliness study.
#pragma once

#include <chrono>

namespace gnnhls {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gnnhls
