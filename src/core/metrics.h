// Evaluation metrics: MAPE for graph-level regression (paper Tables 2/4/5)
// and per-class accuracy for node-level classification (paper Table 3).
#pragma once

#include <array>
#include <vector>

namespace gnnhls {

/// Mean absolute percentage error with a denominator floor:
/// mean(|pred - truth| / max(|truth|, floor)). The floor guards the
/// zero-resource case (a design using 0 DSPs); the paper does not state its
/// convention, so ours is recorded here.
double mape(const std::vector<double>& pred, const std::vector<double>& truth,
            double floor = 1.0);

/// Fraction of correct binary predictions.
double binary_accuracy(const std::vector<int>& pred,
                       const std::vector<int>& truth);

}  // namespace gnnhls
