// Parameterized kernel-variant builders for design-space exploration.
//
// Each builder produces one implementation candidate of a kernel, shaped by
// the two classic HLS source-level knobs:
//
//   * `unroll`  — independent operation chains per loop iteration (the
//     unroll pragma: trades area for latency; must divide the kernel's trip
//     count, powers of two up to 8 are always valid),
//   * `bits`    — datapath bitwidth (narrow datapaths dodge DSP thresholds
//     and shrink glue logic; wide ones grow every operator).
//
// The builders are pure functions of their knobs: the same (kernel, unroll,
// bits) always yields a structurally identical AST, which is what makes
// DesignSpace enumeration deterministic (src/dse/design_space.h). Scheduler
// knobs (clock, uncertainty) are *not* baked into the AST — they travel in
// HlsConfig and only affect the HLS flow.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.h"

namespace gnnhls {

/// gemm: `unroll` multiply-accumulate chains per iteration over an 8x8
/// product (the motivating example of predictor-driven DSE).
Function make_gemm_variant(int unroll, int bits);

/// fir: `unroll` taps of a 32-sample, 8-tap FIR filter evaluated per
/// iteration (multiply + shift-accumulate mix).
Function make_fir_variant(int unroll, int bits);

/// stencil: `unroll` copies of a 3-point 1D stencil body per iteration
/// (add/shift heavy, no multiplies — a LUT/FF-dominated corner).
Function make_stencil_variant(int unroll, int bits);

using VariantBuilder = Function (*)(int unroll, int bits);

struct VariantKernel {
  std::string name;  // "gemm" | "fir" | "stencil"
  VariantBuilder build;
};

/// All explorable kernels, in fixed order.
const std::vector<VariantKernel>& dse_variant_kernels();

/// Builds a variant by kernel name; throws on unknown kernels.
Function make_variant(const std::string& kernel, int unroll, int bits);

}  // namespace gnnhls
